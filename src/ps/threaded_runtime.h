// Real multi-threaded parameter-server runtime.
//
// The simulator (sim_runtime.h) provides deterministic science; this runtime
// proves the same PS/protocol logic is actually concurrent-safe by running
// workers as OS threads against a sharded, per-shard-mutex-protected
// parameter server (one global lock when num_ps_shards == 1):
//
//  * BSP uses a std::barrier per round; worker 0 aggregates and applies.
//  * ASP workers freely pull/push under the PS mutex at their own pace.
//  * SSP workers free-run within the staleness bound: a worker whose local
//    clock is more than `ssp_staleness_bound` steps ahead of the slowest
//    parks on a condition variable until the laggard catches up.
//
// Beyond the fixed-protocol mode, the runtime executes live protocol
// switches (`ThreadedTrainConfig::schedule`): a SwitchSchedule's phases run
// back to back on the *same* worker threads and the same parameter server.
// At each phase boundary every worker quiesces at a drain barrier — all of
// its pushes are synchronous calls into the PS, so arriving at the barrier
// means its updates are durably applied; SSP waiters are released because
// the phase quota is a common local-step count every worker reaches — and
// the one-shot transition step (run inside the barrier's completion, with
// every worker parked) records per-phase metrics, re-snapshots parameters
// and versions, and arms the next phase.  No checkpoint, no restart, no
// lost update.  Phases end on a fixed step quota or reactively, when the
// shared StragglerDetector (fed by per-step wall-clock throughput
// observations) flags or clears a straggler — the paper's Section VI-B3
// policies on real threads.
//
// Transient stragglers are injected from a `StragglerSchedule` evaluated
// against the wall clock: after computing its gradient, a slowed worker
// sleeps (slow_factor - 1) x its measured step time, emulating the paper's
// injected network latency without consuming CPU.
//
// Elastic membership (`ThreadedTrainConfig::elastic`, src/elastic/): the
// worker set itself can change mid-run.  Scripted crash/join/leave events —
// or the reactive evict-on-detect rule — resolve at the drain barrier: the
// epoch's threads quiesce and exit, the RecoveryCoordinator applies the
// membership delta on the main thread (crash recovery restores the
// AsyncSnapshotter's last copy-on-read checkpoint when the policy says so),
// hyper-parameters are re-derived for the new cluster size via derive_hyper,
// and a fresh set of threads (with barriers sized to the new count) carries
// the same phase plan forward.  Protocol switches with no membership event
// due still transition live, exactly as before.
//
// All protocols support gradient compression (`ThreadedTrainConfig::
// compression`): each worker thread encodes its gradient through its own
// `CompressorBank` slot into a `CompressedPush`, and sparse (top-k) pushes
// take a per-shard fast path that locks only the shards owning kept
// coordinates.
//
// Used by tests and the `threaded_training` example.  Wall-clock timing here
// is real, so results are NOT deterministic in update order for ASP (that is
// the point) — but invariants (parameter finiteness, update counts, loss
// decrease on easy problems, per-phase staleness bounds) hold and are
// tested.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "compress/compressed_push.h"
#include "compress/spec.h"
#include "control/controller.h"
#include "core/straggler_detector.h"
#include "elastic/membership_plan.h"
#include "nn/checkpoint.h"
#include "data/batcher.h"
#include "data/dataset.h"
#include "nn/lr_schedule.h"
#include "nn/model.h"
#include "ps/param_server.h"
#include "ps/protocol.h"
#include "ps/switch_schedule.h"
#include "sim/straggler.h"

namespace ss {

/// Thread-safe facade over the sharded ParameterServer.  Each shard is
/// guarded by its own mutex, so concurrent ASP pushes serialize per shard —
/// worker A can apply shard 1 while worker B applies shard 0 — instead of on
/// one global lock.  All multi-shard operations take locks in ascending
/// shard order, which rules out deadlock between the whole-vector helpers
/// and the per-shard fast path.
///
/// Version contract: every shard owns its own version counter.  A dense push
/// advances every shard by one; a sparse push advances only the shards
/// owning kept coordinates, so per-shard versions diverge under sparse
/// traffic.  The *per-shard* API (`pull_with_versions` + the span-of-
/// versions `push`/`push_compressed` overloads) measures staleness exactly
/// in both regimes.  The scalar compatibility API (`pull_with_version`,
/// `version()`, the scalar-version `push`) collapses the vector to its
/// minimum — the count of *complete* updates — and is exact only while all
/// pushes are dense; under sparse pushes the scalar can lag the leading
/// shards by the version spread, so staleness measured against it is a
/// conservative upper bound (it over-counts by at most that spread, never
/// under-counts).  See the regression test
/// ThreadedRuntime.ScalarVersionIsConservativeUnderSparsePushes.
class SharedParameterServer {
 public:
  SharedParameterServer(std::vector<float> init_params, double momentum,
                        std::size_t num_shards = 1)
      : ps_(std::move(init_params), momentum, num_shards),
        shard_mu_(ps_.num_shards()) {}

  [[nodiscard]] std::size_t num_shards() const noexcept { return shard_mu_.size(); }
  [[nodiscard]] std::size_t num_params() const noexcept { return ps_.num_params(); }

  void pull(std::span<float> out) const {
    for (std::size_t s = 0; s < shard_mu_.size(); ++s) {
      const std::lock_guard<std::mutex> lock(shard_mu_[s]);
      ps_.pull_shard(s, out);
    }
  }

  /// Pull + snapshot the version of every shard as it is copied.  The
  /// shard-version vector is what `push` measures staleness against; this is
  /// the exact path and the one the runtime's workers use.
  void pull_with_versions(std::span<float> out, std::vector<std::int64_t>& versions) const {
    versions.resize(shard_mu_.size());
    for (std::size_t s = 0; s < shard_mu_.size(); ++s) {
      const std::lock_guard<std::mutex> lock(shard_mu_[s]);
      ps_.pull_shard(s, out);
      versions[s] = ps_.shard_version(s);
    }
  }

  /// Whole-vector compatibility pull returning a single logical version: the
  /// minimum shard version, i.e. the count of updates *every* shard has
  /// absorbed.  Exact while all pushes are dense (all shards agree); under
  /// sparse pushes the leading shards are ahead of this scalar, so staleness
  /// measured against it over-counts by at most the shard-version spread at
  /// pull time (never under-counts).  Use `pull_with_versions` for exact
  /// accounting.
  std::int64_t pull_with_version(std::span<float> out) const {
    std::int64_t version = 0;
    for (std::size_t s = 0; s < shard_mu_.size(); ++s) {
      const std::lock_guard<std::mutex> lock(shard_mu_[s]);
      ps_.pull_shard(s, out);
      const std::int64_t v = ps_.shard_version(s);
      version = s == 0 ? v : std::min(version, v);
    }
    return version;
  }

  /// Apply a full gradient shard by shard.  Returns the staleness of this
  /// push: the largest number of updates any shard absorbed since the pull
  /// that produced `pull_versions`.
  std::int64_t push(std::span<const float> grad, double lr,
                    std::span<const std::int64_t> pull_versions) {
    if (pull_versions.size() != shard_mu_.size())
      throw ConfigError("SharedParameterServer::push: shard count mismatch");
    std::int64_t staleness = 0;
    for (std::size_t s = 0; s < shard_mu_.size(); ++s) {
      const std::lock_guard<std::mutex> lock(shard_mu_[s]);
      staleness = std::max(staleness, ps_.shard_version(s) - pull_versions[s]);
      ps_.apply_shard(s, grad, lr);
    }
    return staleness;
  }

  /// Apply a compressed push.  Dense pushes take the full shard sweep like
  /// `push`; sparse pushes lock — and advance the version of — *only* the
  /// shards owning kept coordinates, so concurrent sparse ASP pushes to
  /// disjoint shards do not serialize at all.  Locks are taken in ascending
  /// shard order (the index list is ascending), preserving the deadlock-
  /// freedom argument of the whole-vector helpers.  Returns the staleness
  /// measured over the shards the push touched.
  std::int64_t push_compressed(const CompressedPush& push, double lr,
                               std::span<const std::int64_t> pull_versions) {
    if (pull_versions.size() != shard_mu_.size())
      throw ConfigError("SharedParameterServer::push_compressed: shard count mismatch");
    push.validate(ps_.num_params());
    if (!push.sparse())
      return this->push(std::span<const float>(push.values), lr, pull_versions);
    std::int64_t staleness = 0;
    const std::span<const std::uint32_t> indices(push.indices);
    const std::span<const float> values(push.values);
    ps_.for_each_shard_segment(indices, [&](std::size_t s, std::size_t lo, std::size_t hi) {
      const std::lock_guard<std::mutex> lock(shard_mu_[s]);
      staleness = std::max(staleness, ps_.shard_version(s) - pull_versions[s]);
      ps_.apply_sparse_shard(s, indices.subspan(lo, hi - lo), values.subspan(lo, hi - lo), lr);
    });
    return staleness;
  }

  /// Whole-vector compatibility push against a single pulled version (the
  /// scalar returned by `pull_with_version`; see that method's contract —
  /// the reported staleness is conservative once sparse pushes have made
  /// shard versions diverge).
  std::int64_t push(std::span<const float> grad, double lr, std::int64_t pull_version) {
    std::int64_t staleness = 0;
    for (std::size_t s = 0; s < shard_mu_.size(); ++s) {
      const std::lock_guard<std::mutex> lock(shard_mu_[s]);
      staleness = std::max(staleness, ps_.shard_version(s) - pull_version);
      ps_.apply_shard(s, grad, lr);
    }
    return staleness;
  }

  [[nodiscard]] std::vector<float> snapshot() const {
    std::vector<float> out(ps_.num_params());
    pull(out);
    return out;
  }

  /// Copy-on-read snapshot of the full PS state (params + velocity +
  /// per-shard versions) as a format-v2 checkpoint, taken one shard lock at
  /// a time — concurrent pushes to other shards never wait on it.  Each
  /// shard's slice is internally consistent; cross-shard skew is bounded by
  /// the pushes that land mid-walk (the same guarantee `pull` gives).
  /// `logical_step` lands in Checkpoint::global_step (the threaded runtime
  /// stores its update counter there).
  [[nodiscard]] Checkpoint snapshot_checkpoint(std::int64_t logical_step) const {
    Checkpoint ckpt;
    ckpt.global_step = logical_step;
    ckpt.params.resize(ps_.num_params());
    ckpt.velocity.resize(ps_.num_params());
    ckpt.num_shards = static_cast<std::uint64_t>(ps_.num_shards());
    ckpt.shard_versions.resize(ps_.num_shards());
    for (std::size_t s = 0; s < shard_mu_.size(); ++s) {
      const std::lock_guard<std::mutex> lock(shard_mu_[s]);
      ps_.snapshot_shard_state(s, ckpt.params, ckpt.velocity, ckpt.shard_versions[s]);
    }
    return ckpt;
  }

  /// Restore params + velocity from `ckpt`, shard by shard under the shard
  /// locks (crash recovery; versions are never rolled back).
  ///
  /// Layout compatibility: a flat checkpoint (`num_shards <= 1` — v1 files
  /// and single-shard snapshots carry no meaningful shard metadata) restores
  /// into any shard layout, because params/velocity are stored as flat
  /// vectors that the receiving server re-slices.  A sharded checkpoint must
  /// match the server's shard count exactly, and must be self-consistent:
  /// one declaring N shards but carrying a different number of
  /// shard_versions is corrupt (truncated or hand-edited) and is rejected
  /// rather than restored with silently wrong staleness metadata.
  void restore_checkpoint(const Checkpoint& ckpt) {
    if (ckpt.params.size() != ps_.num_params() || ckpt.velocity.size() != ps_.num_params())
      throw CheckpointError("SharedParameterServer::restore_checkpoint: size mismatch");
    if (ckpt.num_shards > 1 && ckpt.num_shards != static_cast<std::uint64_t>(ps_.num_shards()))
      throw CheckpointError("SharedParameterServer::restore_checkpoint: shard layout mismatch");
    if (ckpt.num_shards > 1 && ckpt.shard_versions.size() != ckpt.num_shards)
      throw CheckpointError(
          "SharedParameterServer::restore_checkpoint: checkpoint declares " +
          std::to_string(ckpt.num_shards) + " shards but carries " +
          std::to_string(ckpt.shard_versions.size()) + " shard versions");
    for (std::size_t s = 0; s < shard_mu_.size(); ++s) {
      const std::lock_guard<std::mutex> lock(shard_mu_[s]);
      ps_.restore_shard_state(s, ckpt.params, ckpt.velocity);
    }
  }

  /// Count of complete updates: the minimum shard version (same contract as
  /// `pull_with_version`).
  [[nodiscard]] std::int64_t version() const {
    std::int64_t version = 0;
    for (std::size_t s = 0; s < shard_mu_.size(); ++s) {
      const std::lock_guard<std::mutex> lock(shard_mu_[s]);
      const std::int64_t v = ps_.shard_version(s);
      version = s == 0 ? v : std::min(version, v);
    }
    return version;
  }

 private:
  ShardedParameterServer ps_;
  mutable std::vector<std::mutex> shard_mu_;  ///< one lock per shard
};

struct ThreadedTrainConfig {
  /// Protocol for the whole run when `schedule` is empty; ignored otherwise.
  Protocol protocol = Protocol::kBsp;
  /// Live switch schedule: phases run back to back on the same threads and
  /// PS, transitioning at drain barriers.  Phase `steps` are local steps per
  /// worker; the last phase runs out the remaining `steps_per_worker`
  /// budget.  Only BSP/ASP/SSP phases are accepted (threaded_supported).
  SwitchSchedule schedule;
  std::size_t num_workers = 4;
  std::size_t batch_size = 32;
  std::int64_t steps_per_worker = 100;  ///< local steps each worker performs
  double lr = 0.05;
  double momentum = 0.9;
  std::uint64_t seed = 99;
  int ssp_staleness_bound = 3;  ///< local-clock gap bound for kSsp
  /// PS shards (one mutex each): >1 lets concurrent pushes interleave at
  /// shard granularity instead of serializing on a global lock.
  std::size_t num_ps_shards = 1;
  /// Optional gradient compression, specified exactly like `RunRequest`'s
  /// (core/session.h): the runtime builds one `CompressorBank` for the run
  /// and every worker encodes its push through its own bank slot — the same
  /// pipeline the simulator drives, but on real threads.  Sparse (top-k)
  /// pushes go through the per-shard `push_compressed` fast path.
  CompressionSpec compression;
  /// Wall-clock straggler injection: before pushing, a worker slowed at the
  /// current elapsed time sleeps (slow_factor - 1) x its measured step time.
  /// Event times are seconds since the run started.  Default: no events.
  StragglerSchedule stragglers;
  /// Detector for reactive schedule triggers (kStragglerDetected /
  /// kStragglerCleared).  Fed per-step throughput observations under a
  /// mutex; flags persist across phase transitions so kStragglerCleared
  /// waits for a real recovery.  Unused when the schedule has no reactive
  /// trigger.
  DetectorConfig detector;
  /// Schedule mode only: derive each phase's learning rate from the
  /// configuration policy (core/config_policy.h) with `lr` as the base eta —
  /// synchronous phases get the linear-scaled n x lr, asynchronous phases
  /// keep lr, momentum stays at `momentum` (the paper's kBaseline choice;
  /// PS-side momentum cannot be re-derived mid-run).  When false, every
  /// phase uses `lr` as-is.  Fixed-protocol mode always uses `lr` as-is.
  bool derive_phase_lr = true;
  /// Elastic membership & fault tolerance (src/elastic/).  Event `at_step`
  /// is in per-worker local steps (the unit of `steps_per_worker`);
  /// `snapshot_interval` counts PS updates between asynchronous snapshots.
  /// Scripted events resolve at the drain barrier once every alive worker
  /// has completed exactly `at_step` local steps; the reactive plan evicts
  /// detector-flagged workers at the next drain.  When a membership plan is
  /// active, `derive_phase_lr` additionally re-derives the learning rate for
  /// the changed cluster size (synchronous phases rescale by n'/n, matching
  /// the configuration policy's linear scaling; async phases keep lr) — in
  /// fixed-protocol mode too, relative to the configured `lr`.
  ElasticConfig elastic;
  /// Online policy controller (src/control/): when enabled, the run is cut
  /// into `controller.decision_interval`-step segments and every segment
  /// boundary is a drain barrier where the controller measures the segment,
  /// prices a candidate grid on the simulator twin, and enacts the winner
  /// live — protocol/bound/compression in place, straggler eviction through
  /// the recovery machinery.  Mutually exclusive with `schedule` and
  /// `elastic` (the controller owns both the plan and the worker set);
  /// `derive_phase_lr` applies the configuration policy per enacted
  /// protocol exactly as in schedule mode.  Decision records land in
  /// ThreadedTrainResult::decisions.  Disabled (the default) leaves every
  /// code path bit-identical to a config without this field.
  ControllerConfig controller;
  /// Test hook: called by each worker before every local step (e.g. to make
  /// one worker artificially slow).  Must be thread-safe; may be null.
  std::function<void(std::size_t worker, std::int64_t step)> pre_step_hook;
  /// Observer hook: called inside every drain-barrier completion that
  /// completes a phase (including the run-ending one) with the per-worker
  /// local step count, wall seconds since run start, and a fresh parameter
  /// snapshot — every worker is parked, so the pull is consistent and the
  /// evaluation time is not charged to any worker's step.  Lets examples
  /// trace accuracy-versus-wall-clock without perturbing the workers.  May
  /// be null.  Fixed-protocol runs without a controller drain only at run
  /// end; schedule/controller runs also fire at every phase/interval
  /// boundary.
  std::function<void(std::int64_t step, double wall_seconds, std::span<const float> params)>
      eval_hook;
};

/// Metrics for one executed schedule phase (exactly one entry for a
/// fixed-protocol run).  `steps` is the per-worker local step count of the
/// phase — equal across workers by construction, because a phase ends at a
/// common quota (fixed, or latched as max-clock + 1 when a trigger fires).
struct ThreadedPhaseStats {
  Protocol protocol = Protocol::kBsp;
  bool ended_by_trigger = false;  ///< reactive trigger fired (vs quota/budget)
  std::int64_t start_step = 0;    ///< per-worker local step the phase began at
  std::int64_t steps = 0;         ///< local steps per worker in this phase
  std::int64_t updates = 0;       ///< PS updates applied during the phase
  double mean_staleness = 0.0;    ///< over the phase's async pushes (0 for BSP)
  std::int64_t max_clock_gap = 0; ///< largest local-clock gap inside the phase
  std::int64_t push_bytes = 0;    ///< wire bytes pushed during the phase
  double wall_seconds = 0.0;      ///< real elapsed time of the phase
  double updates_per_sec = 0.0;   ///< phase throughput (updates / wall_seconds)
};

/// Metrics for one resolved membership event (crash / join / leave —
/// scripted or reactive).  One entry per event, in resolution order.
struct ThreadedMembershipStats {
  MembershipEventKind kind = MembershipEventKind::kLeave;
  int worker = -1;                ///< slot the event applied to (joins: the assigned slot)
  std::int64_t at_step = 0;       ///< per-worker local step the event resolved at
  std::size_t workers_after = 0;  ///< cluster size once applied
  double lr_after = 0.0;          ///< current phase's lr re-derived for the new n
  /// Crash with RecoveryMode::kRestoreSnapshot: PS updates rolled back to
  /// the restored snapshot (bounded by one snapshot interval).  0 otherwise.
  std::int64_t updates_lost = 0;
  double recovery_wall_seconds = 0.0;  ///< wall time of the whole recovery pass
};

struct ThreadedTrainResult {
  std::int64_t total_updates = 0;   ///< PS updates applied
  double mean_staleness = 0.0;      ///< over async pushes (0 for pure BSP)
  /// Largest observed local-clock gap (fastest minus slowest worker) at any
  /// step start.  For kSsp this is <= ssp_staleness_bound by construction.
  std::int64_t max_clock_gap = 0;
  /// Total gradient bytes pushed on the (virtual) wire: the codec's wire
  /// size per push when compression is on, full fp32 width otherwise.
  std::int64_t push_bytes = 0;
  /// One entry per executed phase, in order.  Phases the run budget never
  /// reached (or that a never-firing trigger absorbed) are absent.  A phase
  /// interrupted by a membership event contributes ONE entry covering its
  /// whole span (its wall_seconds include the recovery pauses inside it).
  std::vector<ThreadedPhaseStats> phases;
  /// One entry per resolved membership event, in order (empty when the run
  /// is not elastic).
  std::vector<ThreadedMembershipStats> membership;
  /// Snapshots the AsyncSnapshotter stored (incl. the run-start one); 0 for
  /// non-elastic runs.
  std::int64_t snapshots_taken = 0;
  /// One entry per controller decision point (empty unless
  /// ThreadedTrainConfig::controller.enabled): the quantized measurements
  /// the decision saw, every candidate's predicted cost and cache
  /// provenance, the chosen move, and predicted vs. realized gain.
  std::vector<ControllerDecision> decisions;
  std::vector<float> final_params;
};

/// Train `prototype` (cloned per worker) on `train` with real threads.
/// Returns the final parameters; throws on internal inconsistency.
ThreadedTrainResult threaded_train(const Model& prototype, const Dataset& train,
                                   const ThreadedTrainConfig& cfg);

}  // namespace ss
