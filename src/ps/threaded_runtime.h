// Real multi-threaded parameter-server runtime.
//
// The simulator (sim_runtime.h) provides deterministic science; this runtime
// proves the same PS/protocol logic is actually concurrent-safe by running
// workers as OS threads against a sharded, per-shard-mutex-protected
// parameter server (one global lock when num_ps_shards == 1):
//
//  * BSP uses a std::barrier per round; worker 0 aggregates and applies.
//  * ASP workers freely pull/push under the PS mutex at their own pace.
//  * SSP workers free-run within the staleness bound: a worker whose local
//    clock is more than `ssp_staleness_bound` steps ahead of the slowest
//    parks on a condition variable until the laggard catches up.
//
// All three protocols support gradient compression (`ThreadedTrainConfig::
// compression`): each worker thread encodes its gradient through its own
// `CompressorBank` slot into a `CompressedPush`, and sparse (top-k) pushes
// take a per-shard fast path that locks only the shards owning kept
// coordinates.
//
// Used by tests and the `threaded_training` example.  Wall-clock timing here
// is real, so results are NOT deterministic in update order for ASP (that is
// the point) — but invariants (parameter finiteness, update counts, loss
// decrease on easy problems) hold and are tested.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "common/error.h"
#include "compress/compressed_push.h"
#include "compress/spec.h"
#include "data/batcher.h"
#include "data/dataset.h"
#include "nn/lr_schedule.h"
#include "nn/model.h"
#include "ps/param_server.h"
#include "ps/protocol.h"

namespace ss {

/// Thread-safe facade over the sharded ParameterServer.  Each shard is
/// guarded by its own mutex, so concurrent ASP pushes serialize per shard —
/// worker A can apply shard 1 while worker B applies shard 0 — instead of on
/// one global lock.  All multi-shard operations take locks in ascending
/// shard order, which rules out deadlock between the whole-vector helpers
/// and the per-shard fast path.
class SharedParameterServer {
 public:
  SharedParameterServer(std::vector<float> init_params, double momentum,
                        std::size_t num_shards = 1)
      : ps_(std::move(init_params), momentum, num_shards),
        shard_mu_(ps_.num_shards()) {}

  [[nodiscard]] std::size_t num_shards() const noexcept { return shard_mu_.size(); }

  void pull(std::span<float> out) const {
    for (std::size_t s = 0; s < shard_mu_.size(); ++s) {
      const std::lock_guard<std::mutex> lock(shard_mu_[s]);
      ps_.pull_shard(s, out);
    }
  }

  /// Pull + snapshot the version of every shard as it is copied.  The
  /// shard-version vector is what `push` measures staleness against.
  void pull_with_versions(std::span<float> out, std::vector<std::int64_t>& versions) const {
    versions.resize(shard_mu_.size());
    for (std::size_t s = 0; s < shard_mu_.size(); ++s) {
      const std::lock_guard<std::mutex> lock(shard_mu_[s]);
      ps_.pull_shard(s, out);
      versions[s] = ps_.shard_version(s);
    }
  }

  /// Whole-vector compatibility pull: a single logical version (the count of
  /// complete updates at the time of the pull).
  std::int64_t pull_with_version(std::span<float> out) const {
    std::int64_t version = 0;
    for (std::size_t s = 0; s < shard_mu_.size(); ++s) {
      const std::lock_guard<std::mutex> lock(shard_mu_[s]);
      ps_.pull_shard(s, out);
      const std::int64_t v = ps_.shard_version(s);
      version = s == 0 ? v : std::min(version, v);
    }
    return version;
  }

  /// Apply a full gradient shard by shard.  Returns the staleness of this
  /// push: the largest number of updates any shard absorbed since the pull
  /// that produced `pull_versions`.
  std::int64_t push(std::span<const float> grad, double lr,
                    std::span<const std::int64_t> pull_versions) {
    if (pull_versions.size() != shard_mu_.size())
      throw ConfigError("SharedParameterServer::push: shard count mismatch");
    std::int64_t staleness = 0;
    for (std::size_t s = 0; s < shard_mu_.size(); ++s) {
      const std::lock_guard<std::mutex> lock(shard_mu_[s]);
      staleness = std::max(staleness, ps_.shard_version(s) - pull_versions[s]);
      ps_.apply_shard(s, grad, lr);
    }
    return staleness;
  }

  /// Apply a compressed push.  Dense pushes take the full shard sweep like
  /// `push`; sparse pushes lock — and advance the version of — *only* the
  /// shards owning kept coordinates, so concurrent sparse ASP pushes to
  /// disjoint shards do not serialize at all.  Locks are taken in ascending
  /// shard order (the index list is ascending), preserving the deadlock-
  /// freedom argument of the whole-vector helpers.  Returns the staleness
  /// measured over the shards the push touched.
  std::int64_t push_compressed(const CompressedPush& push, double lr,
                               std::span<const std::int64_t> pull_versions) {
    if (pull_versions.size() != shard_mu_.size())
      throw ConfigError("SharedParameterServer::push_compressed: shard count mismatch");
    push.validate(ps_.num_params());
    if (!push.sparse())
      return this->push(std::span<const float>(push.values), lr, pull_versions);
    std::int64_t staleness = 0;
    const std::span<const std::uint32_t> indices(push.indices);
    const std::span<const float> values(push.values);
    ps_.for_each_shard_segment(indices, [&](std::size_t s, std::size_t lo, std::size_t hi) {
      const std::lock_guard<std::mutex> lock(shard_mu_[s]);
      staleness = std::max(staleness, ps_.shard_version(s) - pull_versions[s]);
      ps_.apply_sparse_shard(s, indices.subspan(lo, hi - lo), values.subspan(lo, hi - lo), lr);
    });
    return staleness;
  }

  /// Whole-vector compatibility push against a single pulled version.
  std::int64_t push(std::span<const float> grad, double lr, std::int64_t pull_version) {
    std::int64_t staleness = 0;
    for (std::size_t s = 0; s < shard_mu_.size(); ++s) {
      const std::lock_guard<std::mutex> lock(shard_mu_[s]);
      staleness = std::max(staleness, ps_.shard_version(s) - pull_version);
      ps_.apply_shard(s, grad, lr);
    }
    return staleness;
  }

  [[nodiscard]] std::vector<float> snapshot() const {
    std::vector<float> out(ps_.num_params());
    pull(out);
    return out;
  }

  [[nodiscard]] std::int64_t version() const {
    std::int64_t version = 0;
    for (std::size_t s = 0; s < shard_mu_.size(); ++s) {
      const std::lock_guard<std::mutex> lock(shard_mu_[s]);
      const std::int64_t v = ps_.shard_version(s);
      version = s == 0 ? v : std::min(version, v);
    }
    return version;
  }

 private:
  ShardedParameterServer ps_;
  mutable std::vector<std::mutex> shard_mu_;  ///< one lock per shard
};

struct ThreadedTrainConfig {
  Protocol protocol = Protocol::kBsp;
  std::size_t num_workers = 4;
  std::size_t batch_size = 32;
  std::int64_t steps_per_worker = 100;  ///< local steps each worker performs
  double lr = 0.05;
  double momentum = 0.9;
  std::uint64_t seed = 99;
  int ssp_staleness_bound = 3;  ///< local-clock gap bound for kSsp
  /// PS shards (one mutex each): >1 lets concurrent pushes interleave at
  /// shard granularity instead of serializing on a global lock.
  std::size_t num_ps_shards = 1;
  /// Optional gradient compression, specified exactly like `RunRequest`'s
  /// (core/session.h): the runtime builds one `CompressorBank` for the run
  /// and every worker encodes its push through its own bank slot — the same
  /// pipeline the simulator drives, but on real threads.  Sparse (top-k)
  /// pushes go through the per-shard `push_compressed` fast path.
  CompressionSpec compression;
  /// Test hook: called by each worker before every local step (e.g. to make
  /// one worker artificially slow).  Must be thread-safe; may be null.
  std::function<void(std::size_t worker, std::int64_t step)> pre_step_hook;
};

struct ThreadedTrainResult {
  std::int64_t total_updates = 0;   ///< PS updates applied
  double mean_staleness = 0.0;      ///< over ASP pushes (0 for BSP)
  /// Largest observed local-clock gap (fastest minus slowest worker) at any
  /// step start.  For kSsp this is <= ssp_staleness_bound by construction.
  std::int64_t max_clock_gap = 0;
  /// Total gradient bytes pushed on the (virtual) wire: the codec's wire
  /// size per push when compression is on, full fp32 width otherwise.
  std::int64_t push_bytes = 0;
  std::vector<float> final_params;
};

/// Train `prototype` (cloned per worker) on `train` with real threads.
/// Returns the final parameters; throws on internal inconsistency.
ThreadedTrainResult threaded_train(const Model& prototype, const Dataset& train,
                                   const ThreadedTrainConfig& cfg);

}  // namespace ss
