#include "ps/shard_pool.h"

#include <utility>

namespace ss {

ShardApplyPool::ShardApplyPool(std::size_t extra_threads) {
  threads_.reserve(extra_threads);
  for (std::size_t i = 0; i < extra_threads; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ShardApplyPool::~ShardApplyPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ShardApplyPool::run(std::size_t num_tasks, const std::function<void(std::size_t)>& fn) {
  if (num_tasks == 0) return;
  if (threads_.empty()) {
    for (std::size_t i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    num_tasks_ = num_tasks;
    next_task_.store(0, std::memory_order_relaxed);
    workers_done_ = 0;
    first_error_ = nullptr;
    ++generation_;
  }
  start_cv_.notify_all();
  // The caller is a worker too: claim tasks until the counter runs dry.  A
  // throwing task is recorded (first error wins) rather than propagated
  // mid-fan-out: every participant must finish draining the counter before
  // run() returns, or workers would outlive `fn`'s lifetime.
  claim_tasks(num_tasks, fn);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return workers_done_ == threads_.size(); });
  job_ = nullptr;
  if (first_error_) std::rethrow_exception(std::exchange(first_error_, nullptr));
}

void ShardApplyPool::claim_tasks(std::size_t num_tasks,
                                 const std::function<void(std::size_t)>& fn) {
  for (;;) {
    const std::size_t t = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (t >= num_tasks) break;
    try {
      fn(t);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void ShardApplyPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    std::size_t num_tasks = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen_generation; });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
      num_tasks = num_tasks_;
    }
    claim_tasks(num_tasks, *job);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++workers_done_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace ss
