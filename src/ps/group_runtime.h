// Group-based hybrid synchronization (Gaia, Hsieh et al., NSDI'17, and the
// grouping SGD of Jiang et al., CCGRID'19 — paper references [9], [10]).
//
// The paper's Figure 1 places "group-based" protocols on the
// throughput/accuracy trade-off frontier that Sync-Switch tries to escape.
// This runtime implements the canonical design so the comparison can be
// measured (bench/fig01_design_space):
//
//   * Workers are partitioned into G groups ("datacenters").  Each group
//     owns a full parameter replica and trains it with BSP internally
//     (synchronous update every round, as Gaia does within a datacenter).
//   * Across groups, replicas synchronize asynchronously through Gaia's
//     *significance filter*: after each local round, coordinates whose
//     accumulated change since the last broadcast exceeds
//     `significance_threshold * (|w| + eps)` are broadcast to every other
//     group; insignificant changes stay local.  Broadcasts arrive after a
//     (sparse-payload) network delay and are merged additively.
//
// The replicas therefore drift apart between broadcasts — the protocol's
// accuracy cost — while no group ever waits for another — its speed win.
#pragma once

#include <cstdint>
#include <vector>

#include "ps/sim_runtime.h"

namespace ss {

struct GroupConfig {
  std::size_t num_groups = 2;
  /// Gaia's significance threshold: fraction of |w_i| an accumulated change
  /// must exceed to be broadcast.  Gaia's paper uses ~1% as the initial
  /// threshold.
  double significance_threshold = 0.01;
  std::int64_t step_budget = 0;
  const LrSchedule* lr_schedule = nullptr;
  /// Multiplies eta(step) for the intra-group aggregated update (linear
  /// scaling with the group size is the natural choice).
  double lr_multiplier = 1.0;
  std::size_t per_worker_batch = 64;
  double momentum = 0.9;
  std::int64_t eval_interval = 128;
  double divergence_loss_threshold = 50.0;
};

struct GroupPhaseResult {
  PhaseEnd end = PhaseEnd::kBudgetExhausted;
  std::int64_t steps_done = 0;
  VTime elapsed;
  /// Fraction of coordinates that passed the significance filter, averaged
  /// over all broadcasts (Gaia reports this as its traffic reduction).
  double mean_significant_fraction = 0.0;
  /// Mean L2 distance between group replicas at round boundaries, relative
  /// to the mean parameter norm — the drift the significance filter allows.
  double mean_replica_divergence = 0.0;
  std::int64_t broadcasts = 0;
};

class GroupRuntime {
 public:
  /// Same substrate contract as SimRuntime: real gradient math on simulated
  /// time.  `state.ps` provides the initial parameters and receives the
  /// across-group average when the phase ends (so checkpointing and
  /// evaluation keep working).
  GroupRuntime(ClusterModel cluster, Model& grad_model, Model& eval_model, const Dataset& train,
               const Dataset& eval_set, MetricsSink& sink);

  GroupPhaseResult run(TrainingState& state, const GroupConfig& cfg,
                       const StragglerSchedule& stragglers);

 private:
  ClusterModel cluster_;
  Model& grad_model_;
  Model& eval_model_;
  const Dataset& train_;
  const Dataset& eval_set_;
  MetricsSink& sink_;
};

}  // namespace ss
