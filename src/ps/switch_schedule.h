// Live protocol-switch schedules (paper Sections IV-A and VI-B3).
//
// A SwitchSchedule is the declarative form of Sync-Switch's headline move:
// run one synchronization protocol for a while, then transition to another
// mid-training.  It is a phase list consumed by both runtimes:
//
//  * the simulator (core/session.h: SyncSwitchPolicy::schedule) runs each
//    phase through SimRuntime::run_phase with a checkpoint -> actuate ->
//    restore switch between phases, and
//  * the threaded runtime (ps/threaded_runtime.h: ThreadedTrainConfig::
//    schedule) transitions live, quiescing real worker threads at a drain
//    barrier — no checkpoint, no restart, no lost update.
//
// A phase ends either after a fixed step budget (kStepCount — the paper's
// timing policy, which picks the switch point offline) or when the online
// straggler detector changes state (kStragglerDetected / kStragglerCleared —
// the paper's Section VI-B3 reactive policies).  The *last* phase always
// runs to the end of the run budget, so its `steps` must be 0 and it cannot
// carry a reactive trigger (there is nothing left to switch to).
//
// Step currency is runtime-local: the simulator counts global minibatch
// steps (the unit of Workload::total_steps), the threaded runtime counts
// local steps per worker.  A BSP round consumes n simulator steps but one
// threaded step per worker, so a sim schedule of {BSP n*s, ASP n*t} and a
// threaded schedule of {BSP s, ASP t} describe the same training plan and
// produce the same update counts — which is exactly what the cross-runtime
// switching conformance suite checks.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ps/protocol.h"

namespace ss {

/// What ends a phase (and hands control to the next one).
enum class SwitchTrigger {
  kStepCount,          ///< after `steps` runtime-local steps
  kStragglerDetected,  ///< when the straggler detector flags any worker
  kStragglerCleared,   ///< when the detector stops flagging (flags persist
                       ///< across phase entry, so this waits for a real
                       ///< recovery, not for a fresh empty detector)
};

std::string switch_trigger_name(SwitchTrigger t);

/// One leg of the schedule.
struct SwitchPhase {
  Protocol protocol = Protocol::kBsp;
  SwitchTrigger trigger = SwitchTrigger::kStepCount;
  /// kStepCount: steps this phase runs (runtime-local currency; see file
  /// comment).  Must be > 0 except on the last phase, where it must be 0
  /// (the last phase always runs out the remaining budget).  Ignored for
  /// reactive triggers, which run until the trigger fires or the budget ends.
  std::int64_t steps = 0;
  /// Staleness bound override for kSsp phases; < 0 inherits the runtime's
  /// configured default bound.
  int ssp_staleness_bound = -1;
};

/// Validated phase list.  An empty schedule means "no switching" — the
/// consumer falls back to its single-protocol configuration.
class SwitchSchedule {
 public:
  SwitchSchedule() = default;
  /// Throws ConfigError unless: every non-last kStepCount phase has
  /// steps > 0, every reactive phase has steps == 0, and the last phase is
  /// kStepCount with steps == 0.
  explicit SwitchSchedule(std::vector<SwitchPhase> phases);

  [[nodiscard]] bool empty() const noexcept { return phases_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return phases_.size(); }
  [[nodiscard]] const std::vector<SwitchPhase>& phases() const noexcept { return phases_; }
  [[nodiscard]] const SwitchPhase& phase(std::size_t i) const { return phases_.at(i); }

  /// True if any phase ends on a detector trigger (the consumer must then
  /// run a StragglerDetector and feed it task observations).
  [[nodiscard]] bool has_reactive_trigger() const noexcept;

  /// Budget a phase gets out of `remaining` runtime-local steps: a non-last
  /// step-quota phase gets min(steps, remaining); reactive phases and the
  /// last phase run out the remainder (a reactive phase may be cut short by
  /// its trigger).  Both runtimes call this, so the rule cannot drift
  /// between the simulator and the threaded runtime.
  [[nodiscard]] static std::int64_t phase_budget(const SwitchPhase& phase, bool last,
                                                 std::int64_t remaining) noexcept;

  /// Canonical string covering every field that affects the result; part of
  /// RunRequest::cache_key().  Empty schedule -> "-".
  [[nodiscard]] std::string label() const;

  /// One protocol for the whole run (equivalent to no schedule, but
  /// explicit — useful for sweeping schedules programmatically).
  [[nodiscard]] static SwitchSchedule single(Protocol p);
  /// Fixed step-triggered legs: {{BSP, 120}, {ASP, 0}} runs BSP for 120
  /// steps and ASP for the rest.  The last leg's step count must be 0.
  [[nodiscard]] static SwitchSchedule step_switched(
      std::vector<std::pair<Protocol, std::int64_t>> legs);
  /// The paper's default hybrid in step-triggered form.
  [[nodiscard]] static SwitchSchedule bsp_to_asp(std::int64_t bsp_steps);
  /// Section VI-B3 reactive policy: `first` until a straggler is detected,
  /// then `second` for the rest of the run.
  [[nodiscard]] static SwitchSchedule reactive(Protocol first, Protocol second);
  /// Greedy-style round trip: `first` until a straggler is detected,
  /// `second` until it clears, then `first` again for the rest.
  [[nodiscard]] static SwitchSchedule reactive_round_trip(Protocol first, Protocol second);

 private:
  std::vector<SwitchPhase> phases_;
};

}  // namespace ss
