#include "ps/threaded_runtime.h"

#include <atomic>
#include <barrier>
#include <chrono>
#include <condition_variable>
#include <optional>
#include <thread>

#include "common/error.h"
#include "common/rng.h"
#include "compress/bank.h"
#include "core/config_policy.h"
#include "tensor/ops.h"

namespace ss {

namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_between(SteadyClock::time_point a, SteadyClock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct WorkerContext {
  Model model;
  MinibatchSampler sampler;
  Rng codec_rng;  ///< stochastic-quantization stream (one per worker thread)
  Tensor batch_x;
  std::vector<int> batch_y;
  std::vector<float> snapshot;
  std::vector<float> grad;
  std::vector<std::int64_t> pull_versions;  ///< per-shard versions at pull
  CompressedPush push;                      ///< this round's encoded gradient (BSP)
  // Per-phase accumulators, reset by the drain-barrier transition.
  std::int64_t phase_staleness_sum = 0;
  std::int64_t phase_push_bytes = 0;
};

/// Resolve the run's phase plan: an explicit schedule, or one phase covering
/// the whole run in fixed-protocol mode.
std::vector<SwitchPhase> resolve_plan(const ThreadedTrainConfig& cfg) {
  std::vector<SwitchPhase> plan;
  if (cfg.schedule.empty()) {
    plan.push_back(SwitchPhase{cfg.protocol, SwitchTrigger::kStepCount, 0, -1});
  } else {
    plan = cfg.schedule.phases();
  }
  for (const SwitchPhase& p : plan)
    if (!threaded_supported(p.protocol))
      throw ConfigError("threaded_train: protocol " + protocol_name(p.protocol) +
                        " is simulator-only (supported here: BSP, ASP, SSP)");
  return plan;
}

}  // namespace

ThreadedTrainResult threaded_train(const Model& prototype, const Dataset& train,
                                   const ThreadedTrainConfig& cfg) {
  if (cfg.num_workers == 0) throw ConfigError("threaded_train: num_workers must be > 0");
  if (cfg.steps_per_worker <= 0) throw ConfigError("threaded_train: steps must be > 0");

  const std::vector<SwitchPhase> plan = resolve_plan(cfg);
  const bool use_detector = cfg.schedule.has_reactive_trigger();
  for (const SwitchPhase& p : plan) {
    const int bound = p.ssp_staleness_bound >= 0 ? p.ssp_staleness_bound : cfg.ssp_staleness_bound;
    if (p.protocol == Protocol::kSsp && bound < 0)
      throw ConfigError("threaded_train: negative staleness bound");
  }

  // Per-phase effective learning rates, resolved before any thread starts so
  // the drain-barrier transition never allocates or throws.  In schedule
  // mode the configuration policy's linear scaling rule applies (BSP phases
  // train on an n-times-larger effective batch); fixed-protocol mode uses
  // cfg.lr untouched, as it always has.
  std::vector<double> phase_lr(plan.size(), cfg.lr);
  if (!cfg.schedule.empty() && cfg.derive_phase_lr) {
    const BaseHyper base{cfg.batch_size, cfg.lr, cfg.momentum};
    for (std::size_t i = 0; i < plan.size(); ++i) {
      const DerivedHyper h = derive_hyper(plan[i].protocol, cfg.num_workers, base,
                                          MomentumPolicy::kBaseline, /*steps_per_epoch=*/1);
      phase_lr[i] = cfg.lr * h.lr_multiplier;
    }
  }

  const std::size_t p = prototype.num_params();
  const std::size_t d = train.feature_dim();
  SharedParameterServer ps(prototype.get_params(), cfg.momentum, cfg.num_ps_shards);
  // One bank for the run, one slot per worker; calls are thread-safe because
  // each worker thread only ever touches its own slot (and its own RNG).
  std::optional<CompressorBank> bank = cfg.compression.make_bank(cfg.num_workers);
  const std::int64_t dense_bytes = static_cast<std::int64_t>(p * sizeof(float));
  const bool inject_stragglers = !cfg.stragglers.events().empty();

  Rng root(cfg.seed);
  const auto shards = make_shards(train.size(), cfg.num_workers);
  std::vector<WorkerContext> ctx;
  ctx.reserve(cfg.num_workers);
  for (std::size_t w = 0; w < cfg.num_workers; ++w) {
    WorkerContext c{
        prototype.clone(),
        MinibatchSampler(shards[w], cfg.batch_size, root.fork(w + 1)),
        root.fork(cfg.num_workers + 1 + w),
        Tensor({cfg.batch_size, d}),
        {},
        std::vector<float>(p),
        std::vector<float>(p),
        {},
        {},
        0,
        0,
    };
    ctx.push_back(std::move(c));
  }

  // ------------------------------------------------------------------
  // Shared switch-controller state.  Three synchronization domains:
  //  * clock_mu/clock_cv guard the per-worker local clocks, the phase step
  //    quota, and the trigger latch during async phases;
  //  * det_mu guards the straggler detector;
  //  * everything else (phase index, protocol, lr, BSP round state, phase
  //    stats) is only mutated inside the drain-barrier completion or by
  //    worker 0 between BSP round barriers — both points where the barrier
  //    provides the happens-before edge to every other worker.
  // ------------------------------------------------------------------
  std::mutex clock_mu;
  std::condition_variable clock_cv;
  std::vector<std::int64_t> clock(cfg.num_workers, 0);  ///< local steps in current phase
  std::int64_t quota = 0;        ///< common local-step count the phase runs to
  bool trigger_fired = false;    ///< reactive trigger latched for this phase

  std::mutex det_mu;
  StragglerDetector detector(cfg.num_workers, cfg.detector);

  std::size_t phase_idx = 0;
  Protocol proto = plan[0].protocol;
  double lr = phase_lr[0];
  std::int64_t ssp_bound = 0;
  std::int64_t done = 0;  ///< local steps per worker completed in finished phases
  bool run_over = false;

  std::vector<float> agg(p);              // BSP aggregation buffer (worker 0)
  std::vector<float> shared_snapshot(p);  // BSP round snapshot
  std::int64_t rounds_done = 0;           // BSP rounds completed in current phase
  bool bsp_phase_over = false;

  std::atomic<std::int64_t> total_updates{0};
  std::atomic<std::int64_t> phase_max_gap{0};
  std::int64_t phase_start_updates = 0;
  SteadyClock::time_point run_start = SteadyClock::now();
  SteadyClock::time_point phase_start = run_start;

  std::vector<ThreadedPhaseStats> stats;
  stats.reserve(plan.size());
  std::int64_t run_async_staleness = 0;  // run totals over async-phase pushes
  std::int64_t run_async_updates = 0;

  auto min_clock = [&] {  // callers hold clock_mu
    return *std::min_element(clock.begin(), clock.end());
  };

  /// Arm phase `idx`.  Runs before the threads start and inside the drain
  /// barrier's completion — never concurrently with a worker step.
  auto enter_phase = [&](std::size_t idx) {
    phase_idx = idx;
    const SwitchPhase& ph = plan[idx];
    proto = ph.protocol;
    lr = phase_lr[idx];
    ssp_bound = ph.ssp_staleness_bound >= 0 ? ph.ssp_staleness_bound : cfg.ssp_staleness_bound;
    const bool last = idx + 1 == plan.size();
    const std::int64_t remaining = cfg.steps_per_worker - done;
    quota = SwitchSchedule::phase_budget(ph, last, remaining);
    trigger_fired = false;
    std::fill(clock.begin(), clock.end(), 0);
    rounds_done = 0;
    bsp_phase_over = false;
    phase_max_gap.store(0, std::memory_order_relaxed);
    phase_start_updates = total_updates.load(std::memory_order_relaxed);
    phase_start = SteadyClock::now();
    // Fresh snapshot for a BSP phase entry: in-flight pushes of the previous
    // phase are all applied (pushes are synchronous and every worker is
    // parked at the drain barrier), so this is the reconciled parameter
    // state the next phase starts from.
    ps.pull(std::span<float>(shared_snapshot));
  };
  enter_phase(0);

  /// The drain-barrier transition: record the finished phase, then arm the
  /// next one (or end the run).  Runs on exactly one thread while every
  /// worker is parked at the barrier.
  auto finish_phase = [&]() noexcept {
    ThreadedPhaseStats s;
    s.protocol = proto;
    s.ended_by_trigger = trigger_fired;
    s.start_step = done;
    s.steps = clock[0];  // equal across workers: phases end at a common quota
    s.updates = total_updates.load(std::memory_order_relaxed) - phase_start_updates;
    s.max_clock_gap = phase_max_gap.load(std::memory_order_relaxed);
    std::int64_t staleness_sum = 0;
    for (auto& c : ctx) {
      staleness_sum += c.phase_staleness_sum;
      s.push_bytes += c.phase_push_bytes;
      c.phase_staleness_sum = 0;
      c.phase_push_bytes = 0;
    }
    if (proto != Protocol::kBsp && s.updates > 0) {
      s.mean_staleness = static_cast<double>(staleness_sum) / static_cast<double>(s.updates);
      run_async_staleness += staleness_sum;
      run_async_updates += s.updates;
    }
    const SteadyClock::time_point now = SteadyClock::now();
    s.wall_seconds = seconds_between(phase_start, now);
    if (s.wall_seconds > 0.0)
      s.updates_per_sec = static_cast<double>(s.updates) / s.wall_seconds;
    stats.push_back(s);
    done += s.steps;
    run_over = done >= cfg.steps_per_worker;
    if (!run_over) enter_phase(std::min(phase_idx + 1, plan.size() - 1));
  };

  std::barrier round_barrier(static_cast<std::ptrdiff_t>(cfg.num_workers));
  std::barrier<decltype(finish_phase)> drain_barrier(
      static_cast<std::ptrdiff_t>(cfg.num_workers), finish_phase);

  /// Wall-clock straggler injection: a worker slowed at the current elapsed
  /// time sleeps (factor - 1) x its measured step time, emulating the
  /// paper's injected per-message latency without consuming CPU.
  auto inject_delay = [&](std::size_t w, SteadyClock::time_point step_start) {
    if (!inject_stragglers) return;
    const double elapsed = seconds_between(run_start, SteadyClock::now());
    const double factor =
        cfg.stragglers.slow_factor(static_cast<int>(w), VTime::from_seconds(elapsed));
    if (factor <= 1.0) return;
    const double step_seconds = seconds_between(step_start, SteadyClock::now());
    std::this_thread::sleep_for(
        std::chrono::duration<double>(step_seconds * (factor - 1.0)));
  };

  /// Feed one step observation to the shared detector.  Returns true when a
  /// detection pass ran *and* the current phase's reactive trigger condition
  /// holds afterwards.  Only async workers act on the return value; during
  /// BSP phases worker 0 evaluates the trigger once per round instead, so
  /// every worker of a round sees the same decision.
  auto feed_detector = [&](std::size_t w, SteadyClock::time_point step_start) -> bool {
    if (!use_detector) return false;
    const double secs = seconds_between(step_start, SteadyClock::now());
    const std::lock_guard<std::mutex> lock(det_mu);
    if (!detector.observe(static_cast<int>(w), cfg.batch_size, VTime::from_seconds(secs)))
      return false;
    switch (plan[phase_idx].trigger) {
      case SwitchTrigger::kStragglerDetected:
        return detector.any_straggler();
      case SwitchTrigger::kStragglerCleared:
        return !detector.any_straggler();
      case SwitchTrigger::kStepCount:
        return false;
    }
    return false;
  };

  /// Latch a fired reactive trigger (async phases): lower the phase quota to
  /// a common step count every worker can still reach — the fastest
  /// worker's clock plus one — and wake SSP waiters so they re-check it.
  auto latch_trigger = [&] {
    {
      const std::lock_guard<std::mutex> lock(clock_mu);
      if (!trigger_fired) {
        trigger_fired = true;
        const std::int64_t fastest = *std::max_element(clock.begin(), clock.end());
        quota = std::min(quota, fastest + 1);
      }
    }
    clock_cv.notify_all();
  };

  // ------------------------------------------------------------------
  // Phase bodies.
  // ------------------------------------------------------------------

  // Round-based BSP: all workers compute on the same snapshot, worker 0
  // aggregates after the barrier and applies one averaged update.  The
  // end-of-phase decision (quota reached or reactive trigger fired) is made
  // once per round by worker 0 between the two barriers, so every worker
  // leaves the phase at the same round.
  auto run_bsp_phase = [&](std::size_t w) {
    auto& c = ctx[w];
    std::vector<std::uint32_t> indices;
    while (!bsp_phase_over) {
      if (cfg.pre_step_hook) cfg.pre_step_hook(w, done + clock[w]);
      const SteadyClock::time_point step_start = SteadyClock::now();
      c.sampler.next_batch(indices);
      train.gather(indices, c.batch_x, c.batch_y);
      c.model.gradient_at(shared_snapshot, c.batch_x, c.batch_y, c.grad);
      if (bank) {
        // Each worker compresses its own push through its bank slot; the
        // aggregator decodes, so the PS math sees the lossy values exactly
        // as the simulator's BSP path does.
        c.push = bank->encode(static_cast<int>(w), c.grad, c.codec_rng);
        c.phase_push_bytes += static_cast<std::int64_t>(c.push.wire_size);
      } else {
        c.phase_push_bytes += dense_bytes;
      }
      inject_delay(w, step_start);
      feed_detector(w, step_start);  // w0 evaluates the trigger below
      round_barrier.arrive_and_wait();  // all gradients ready
      if (w == 0) {
        std::fill(agg.begin(), agg.end(), 0.0f);
        for (auto& other : ctx) {
          if (bank)
            other.push.add_into(agg);
          else
            ops::add_inplace(std::span<float>(agg), std::span<const float>(other.grad));
        }
        ops::scale_inplace(std::span<float>(agg),
                           1.0f / static_cast<float>(cfg.num_workers));
        ps.push(agg, lr, ps.version());
        total_updates.fetch_add(1, std::memory_order_relaxed);
        ps.pull(std::span<float>(shared_snapshot));
        ++rounds_done;
        bool over = rounds_done >= quota;
        if (!over && plan[phase_idx].trigger != SwitchTrigger::kStepCount) {
          const std::lock_guard<std::mutex> lock(det_mu);
          const bool cond = plan[phase_idx].trigger == SwitchTrigger::kStragglerDetected
                                ? detector.any_straggler()
                                : !detector.any_straggler();
          if (cond) {
            over = true;
            trigger_fired = true;
          }
        }
        bsp_phase_over = over;
      }
      round_barrier.arrive_and_wait();  // updated snapshot + decision visible
      ++clock[w];  // own slot; read again only after the next barrier
    }
  };

  // ASP: free-running workers.  SSP: free-running within the staleness
  // bound — a worker whose local clock would run more than `bound` steps
  // ahead of the slowest parks on the condition variable until the
  // laggard's push advances the minimum (or the trigger latch lowers the
  // quota below its clock).
  auto run_async_phase = [&](std::size_t w) {
    auto& c = ctx[w];
    const bool bounded = proto == Protocol::kSsp;
    std::vector<std::uint32_t> indices;
    while (true) {
      std::int64_t my = 0;
      {
        std::unique_lock<std::mutex> lock(clock_mu);
        if (clock[w] >= quota) break;
        if (bounded) {
          clock_cv.wait(lock, [&] {
            return clock[w] >= quota || clock[w] - min_clock() <= ssp_bound;
          });
          if (clock[w] >= quota) break;
        }
        const std::int64_t gap = clock[w] - min_clock();
        std::int64_t seen = phase_max_gap.load(std::memory_order_relaxed);
        while (gap > seen &&
               !phase_max_gap.compare_exchange_weak(seen, gap, std::memory_order_relaxed)) {
        }
        my = clock[w];
      }
      if (cfg.pre_step_hook) cfg.pre_step_hook(w, done + my);
      const SteadyClock::time_point step_start = SteadyClock::now();
      ps.pull_with_versions(c.snapshot, c.pull_versions);
      c.sampler.next_batch(indices);
      train.gather(indices, c.batch_x, c.batch_y);
      c.model.gradient_at(c.snapshot, c.batch_x, c.batch_y, c.grad);
      inject_delay(w, step_start);
      if (bank) {
        // Sparse (top-k) pushes lock only the shards holding kept
        // coordinates; dense quantized pushes sweep all shards like an
        // uncompressed push.
        const CompressedPush push = bank->encode(static_cast<int>(w), c.grad, c.codec_rng);
        c.phase_push_bytes += static_cast<std::int64_t>(push.wire_size);
        c.phase_staleness_sum += ps.push_compressed(push, lr, c.pull_versions);
      } else {
        c.phase_push_bytes += dense_bytes;
        c.phase_staleness_sum += ps.push(c.grad, lr, c.pull_versions);
      }
      total_updates.fetch_add(1, std::memory_order_relaxed);
      if (feed_detector(w, step_start)) latch_trigger();
      {
        const std::lock_guard<std::mutex> lock(clock_mu);
        ++clock[w];
      }
      clock_cv.notify_all();
    }
  };

  // Outer loop: every worker executes the same phase sequence, quiescing at
  // the drain barrier between phases.  The barrier's completion runs the
  // transition while all workers are parked, so phase state needs no lock.
  auto worker_fn = [&](std::size_t w) {
    while (true) {
      if (proto == Protocol::kBsp)
        run_bsp_phase(w);
      else
        run_async_phase(w);
      drain_barrier.arrive_and_wait();
      if (run_over) break;
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(cfg.num_workers);
  for (std::size_t w = 0; w < cfg.num_workers; ++w) threads.emplace_back(worker_fn, w);
  for (auto& t : threads) t.join();

  ThreadedTrainResult result;
  result.total_updates = total_updates.load();
  result.phases = std::move(stats);
  for (const auto& s : result.phases) {
    result.max_clock_gap = std::max(result.max_clock_gap, s.max_clock_gap);
    result.push_bytes += s.push_bytes;
  }
  if (run_async_updates > 0)
    result.mean_staleness =
        static_cast<double>(run_async_staleness) / static_cast<double>(run_async_updates);
  result.final_params = ps.snapshot();
  return result;
}

}  // namespace ss
