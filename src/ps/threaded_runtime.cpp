#include "ps/threaded_runtime.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <condition_variable>
#include <optional>
#include <thread>

#include "common/error.h"
#include "common/rng.h"
#include "compress/bank.h"
#include "tensor/ops.h"

namespace ss {

namespace {

struct WorkerContext {
  Model model;
  MinibatchSampler sampler;
  Rng codec_rng;  ///< stochastic-quantization stream (one per worker thread)
  Tensor batch_x;
  std::vector<int> batch_y;
  std::vector<float> snapshot;
  std::vector<float> grad;
  std::vector<std::int64_t> pull_versions;  ///< per-shard versions at pull
  CompressedPush push;                      ///< this round's encoded gradient (BSP)
  std::int64_t staleness_sum = 0;
  std::int64_t push_bytes = 0;
};

}  // namespace

ThreadedTrainResult threaded_train(const Model& prototype, const Dataset& train,
                                   const ThreadedTrainConfig& cfg) {
  if (cfg.num_workers == 0) throw ConfigError("threaded_train: num_workers must be > 0");
  if (cfg.steps_per_worker <= 0) throw ConfigError("threaded_train: steps must be > 0");

  const std::size_t p = prototype.num_params();
  const std::size_t d = train.feature_dim();
  SharedParameterServer ps(prototype.get_params(), cfg.momentum, cfg.num_ps_shards);
  // One bank for the run, one slot per worker; calls are thread-safe because
  // each worker thread only ever touches its own slot (and its own RNG).
  std::optional<CompressorBank> bank = cfg.compression.make_bank(cfg.num_workers);
  const std::int64_t dense_bytes = static_cast<std::int64_t>(p * sizeof(float));

  Rng root(cfg.seed);
  const auto shards = make_shards(train.size(), cfg.num_workers);
  std::vector<WorkerContext> ctx;
  ctx.reserve(cfg.num_workers);
  for (std::size_t w = 0; w < cfg.num_workers; ++w) {
    WorkerContext c{
        prototype.clone(),
        MinibatchSampler(shards[w], cfg.batch_size, root.fork(w + 1)),
        root.fork(cfg.num_workers + 1 + w),
        Tensor({cfg.batch_size, d}),
        {},
        std::vector<float>(p),
        std::vector<float>(p),
        {},
        {},
        0,
        0,
    };
    ctx.push_back(std::move(c));
  }

  std::atomic<std::int64_t> total_updates{0};
  std::int64_t result_max_gap = 0;

  if (cfg.protocol == Protocol::kBsp) {
    // Round-based: all workers compute on the same snapshot, worker 0
    // aggregates after the barrier and applies one averaged update.
    std::vector<float> agg(p);
    std::barrier round_barrier(static_cast<std::ptrdiff_t>(cfg.num_workers));
    std::vector<float> shared_snapshot = ps.snapshot();

    auto worker_fn = [&](std::size_t w) {
      auto& c = ctx[w];
      std::vector<std::uint32_t> indices;
      for (std::int64_t step = 0; step < cfg.steps_per_worker; ++step) {
        c.sampler.next_batch(indices);
        train.gather(indices, c.batch_x, c.batch_y);
        c.model.gradient_at(shared_snapshot, c.batch_x, c.batch_y, c.grad);
        if (bank) {
          // Each worker compresses its own push through its bank slot; the
          // aggregator decodes, so the PS math sees the lossy values exactly
          // as the simulator's BSP path does.
          c.push = bank->encode(static_cast<int>(w), c.grad, c.codec_rng);
          c.push_bytes += static_cast<std::int64_t>(c.push.wire_size);
        } else {
          c.push_bytes += dense_bytes;
        }
        round_barrier.arrive_and_wait();  // all gradients ready
        if (w == 0) {
          std::fill(agg.begin(), agg.end(), 0.0f);
          for (auto& other : ctx) {
            if (bank)
              other.push.add_into(agg);
            else
              ops::add_inplace(std::span<float>(agg), std::span<const float>(other.grad));
          }
          ops::scale_inplace(std::span<float>(agg),
                             1.0f / static_cast<float>(cfg.num_workers));
          ps.push(agg, cfg.lr, ps.version());
          total_updates.fetch_add(1, std::memory_order_relaxed);
          shared_snapshot = ps.snapshot();
        }
        round_barrier.arrive_and_wait();  // updated snapshot visible
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(cfg.num_workers);
    for (std::size_t w = 0; w < cfg.num_workers; ++w) threads.emplace_back(worker_fn, w);
    for (auto& t : threads) t.join();
  } else if (cfg.protocol == Protocol::kAsp || cfg.protocol == Protocol::kSsp) {
    // ASP: free-running workers.  SSP: free-running within the staleness
    // bound — a worker whose local clock would run more than `bound` steps
    // ahead of the slowest parks on the condition variable until the
    // laggard's push advances the minimum.
    const bool bounded = cfg.protocol == Protocol::kSsp;
    const auto bound = static_cast<std::int64_t>(cfg.ssp_staleness_bound);
    if (bounded && bound < 0) throw ConfigError("threaded_train: negative staleness bound");

    std::mutex clock_mu;
    std::condition_variable clock_cv;
    std::vector<std::int64_t> local_clock(cfg.num_workers, 0);
    std::atomic<std::int64_t> max_gap{0};
    auto min_clock = [&] {
      return *std::min_element(local_clock.begin(), local_clock.end());
    };

    auto worker_fn = [&](std::size_t w) {
      auto& c = ctx[w];
      std::vector<std::uint32_t> indices;
      for (std::int64_t step = 0; step < cfg.steps_per_worker; ++step) {
        if (cfg.pre_step_hook) cfg.pre_step_hook(w, step);
        {
          std::unique_lock<std::mutex> lock(clock_mu);
          if (bounded)
            clock_cv.wait(lock, [&] { return step - min_clock() <= bound; });
          const std::int64_t gap = step - min_clock();
          std::int64_t seen = max_gap.load(std::memory_order_relaxed);
          while (gap > seen &&
                 !max_gap.compare_exchange_weak(seen, gap, std::memory_order_relaxed)) {
          }
        }
        ps.pull_with_versions(c.snapshot, c.pull_versions);
        c.sampler.next_batch(indices);
        train.gather(indices, c.batch_x, c.batch_y);
        c.model.gradient_at(c.snapshot, c.batch_x, c.batch_y, c.grad);
        if (bank) {
          // Sparse (top-k) pushes lock only the shards holding kept
          // coordinates; dense quantized pushes sweep all shards like an
          // uncompressed push.
          const CompressedPush push = bank->encode(static_cast<int>(w), c.grad, c.codec_rng);
          c.push_bytes += static_cast<std::int64_t>(push.wire_size);
          c.staleness_sum += ps.push_compressed(push, cfg.lr, c.pull_versions);
        } else {
          c.push_bytes += dense_bytes;
          c.staleness_sum += ps.push(c.grad, cfg.lr, c.pull_versions);
        }
        total_updates.fetch_add(1, std::memory_order_relaxed);
        {
          const std::lock_guard<std::mutex> lock(clock_mu);
          local_clock[w] = step + 1;
        }
        clock_cv.notify_all();
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(cfg.num_workers);
    for (std::size_t w = 0; w < cfg.num_workers; ++w) threads.emplace_back(worker_fn, w);
    for (auto& t : threads) t.join();
    result_max_gap = max_gap.load();
  } else {
    throw ConfigError("threaded_train: protocol " + protocol_name(cfg.protocol) +
                      " is simulator-only (supported here: BSP, ASP, SSP)");
  }

  ThreadedTrainResult result;
  result.total_updates = total_updates.load();
  result.max_clock_gap = result_max_gap;
  result.final_params = ps.snapshot();
  for (const auto& c : ctx) result.push_bytes += c.push_bytes;
  if (cfg.protocol != Protocol::kBsp && result.total_updates > 0) {
    std::int64_t total_staleness = 0;
    for (const auto& c : ctx) total_staleness += c.staleness_sum;
    result.mean_staleness =
        static_cast<double>(total_staleness) / static_cast<double>(result.total_updates);
  }
  return result;
}

}  // namespace ss
