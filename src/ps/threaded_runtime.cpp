#include "ps/threaded_runtime.h"

#include <atomic>
#include <barrier>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <optional>
#include <thread>

#include "common/error.h"
#include "common/rng.h"
#include "compress/bank.h"
#include "core/config_policy.h"
#include "elastic/async_snapshotter.h"
#include "elastic/recovery_coordinator.h"
#include "net/inproc_transport.h"
#include "obs/obs.h"
#include "sim/calibration.h"
#include "tensor/ops.h"

namespace ss {

namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_between(SteadyClock::time_point a, SteadyClock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct WorkerContext {
  Model model;
  MinibatchSampler sampler;
  Rng codec_rng;  ///< stochastic-quantization stream (one per worker thread)
  Tensor batch_x;
  std::vector<int> batch_y;
  std::vector<float> snapshot;
  std::vector<float> grad;
  std::vector<std::int64_t> pull_versions;  ///< per-shard versions at pull
  CompressedPush push;                      ///< this round's encoded gradient (BSP)
  // Per-phase accumulators, reset by the drain-barrier transition.
  std::int64_t phase_staleness_sum = 0;
  std::int64_t phase_push_bytes = 0;
  // Compute-side step spans (excluding barrier/SSP waits): the controller's
  // measurement source — a straggler's injected delay lands in its own slot
  // instead of being smeared over everyone by barrier waits.
  double phase_step_seconds = 0.0;
  std::int64_t phase_step_count = 0;
};

/// Resolve the run's phase plan: an explicit schedule, or one phase covering
/// the whole run in fixed-protocol mode.
std::vector<SwitchPhase> resolve_plan(const ThreadedTrainConfig& cfg) {
  std::vector<SwitchPhase> plan;
  if (cfg.schedule.empty()) {
    plan.push_back(SwitchPhase{cfg.protocol, SwitchTrigger::kStepCount, 0, -1});
  } else {
    plan = cfg.schedule.phases();
  }
  for (const SwitchPhase& p : plan)
    if (!threaded_supported(p.protocol))
      throw ConfigError("threaded_train: protocol " + protocol_name(p.protocol) +
                        " is simulator-only (supported here: BSP, ASP, SSP)");
  return plan;
}

/// std::barrier requires a noexcept completion; wrap the transition closure.
struct DrainCompletion {
  const std::function<void()>* fn;
  void operator()() const noexcept { (*fn)(); }
};

}  // namespace

ThreadedTrainResult threaded_train(const Model& prototype, const Dataset& train,
                                   const ThreadedTrainConfig& cfg) {
  if (cfg.num_workers == 0) throw ConfigError("threaded_train: num_workers must be > 0");
  if (cfg.steps_per_worker <= 0) throw ConfigError("threaded_train: steps must be > 0");

  // In controller mode the plan is grown dynamically: one SwitchPhase per
  // decision interval, appended at each drain barrier with whatever the
  // controller enacted.
  std::vector<SwitchPhase> plan = resolve_plan(cfg);
  const bool elastic_mode = !cfg.elastic.empty();
  const bool reactive_membership = elastic_mode && cfg.elastic.plan.reactive();
  const bool controller_mode = cfg.controller.enabled;
  if (controller_mode) {
    if (!cfg.schedule.empty())
      throw ConfigError("threaded_train: the controller picks phases itself; an explicit "
                        "switch schedule cannot compose with controller mode");
    if (elastic_mode)
      throw ConfigError("threaded_train: the controller owns the worker set; elastic "
                        "membership plans cannot compose with controller mode");
    if (cfg.controller.decision_interval <= 0)
      throw ConfigError("threaded_train: controller decision_interval must be > 0");
  }
  if (reactive_membership && cfg.schedule.has_reactive_trigger())
    throw ConfigError("threaded_train: reactive membership and reactive switch triggers "
                      "cannot share one straggler detector; pick one policy");
  const bool use_detector = cfg.schedule.has_reactive_trigger() || reactive_membership;
  for (const SwitchPhase& p : plan) {
    const int bound = p.ssp_staleness_bound >= 0 ? p.ssp_staleness_bound : cfg.ssp_staleness_bound;
    if (p.protocol == Protocol::kSsp && bound < 0)
      throw ConfigError("threaded_train: negative staleness bound");
  }

  // Membership bookkeeping: slot ids are stable; joins claim ids past the
  // initial cluster, so every per-slot structure is pre-sized to max_slots.
  // Controller evictions reuse the coordinator with an empty plan, so its
  // floor comes from the controller config.
  ElasticConfig coord_cfg = cfg.elastic;
  if (controller_mode) coord_cfg.min_workers = std::max<std::size_t>(1, cfg.controller.min_workers);
  RecoveryCoordinator coord(coord_cfg, cfg.num_workers);
  const std::size_t max_slots = coord.max_slots();
  const std::size_t n0 = cfg.num_workers;

  // Per-phase effective learning rates, re-derived whenever the cluster
  // size changes.  In schedule mode the configuration policy's linear
  // scaling rule applies outright (BSP phases train on an n-times-larger
  // effective batch); fixed-protocol mode starts from cfg.lr exactly as it
  // always has, and an elastic membership change rescales it by the
  // policy's n'/n ratio for synchronous protocols (async phases keep lr).
  const BaseHyper base_hyper{cfg.batch_size, cfg.lr, cfg.momentum};
  auto lr_multiplier = [&](Protocol proto, std::size_t n) {
    return derive_hyper(proto, n, base_hyper, MomentumPolicy::kBaseline, /*steps_per_epoch=*/1)
        .lr_multiplier;
  };
  auto lr_for_phase = [&](std::size_t i, std::size_t n) -> double {
    if (!cfg.derive_phase_lr) return cfg.lr;
    // Controller mode derives like schedule mode: the controller may enact
    // any protocol at any barrier, and each gets the configuration policy's
    // lr (synchronous phases linear-scaled, async phases base lr).
    if (!cfg.schedule.empty() || controller_mode)
      return cfg.lr * lr_multiplier(plan[i].protocol, n);
    // n == n0 makes the ratio exactly 1.0, so non-elastic fixed-protocol
    // runs use cfg.lr bit for bit.
    return cfg.lr * (lr_multiplier(plan[i].protocol, n) / lr_multiplier(plan[i].protocol, n0));
  };
  std::vector<double> phase_lr(plan.size(), cfg.lr);
  for (std::size_t i = 0; i < plan.size(); ++i) phase_lr[i] = lr_for_phase(i, n0);

  const std::size_t p = prototype.num_params();
  const std::size_t d = train.feature_dim();
  SharedParameterServer ps_impl(prototype.get_params(), cfg.momentum, cfg.num_ps_shards);
  // Every worker<->PS interaction below goes through the Transport seam —
  // the same interface the socket backend (net/socket_transport.h) serves
  // over a wire.  The in-process shim adds only a virtual dispatch, so the
  // threaded runtime stays the bit-for-bit reference implementation.
  InProcTransport ps(ps_impl);
  // One bank for the run, one slot per worker slot; calls are thread-safe
  // because each worker thread only ever touches its own slot (and RNG).
  std::optional<CompressorBank> bank = cfg.compression.make_bank(max_slots);
  const std::int64_t dense_bytes = static_cast<std::int64_t>(p * sizeof(float));
  const bool inject_stragglers = !cfg.stragglers.events().empty();

  // Online controller state.  `compress_on` is the controller's live
  // compression toggle (always true for plain codec runs): it is only
  // mutated inside the drain-barrier completion, so workers read it with
  // the barrier's happens-before edge and a phase never mixes regimes.
  std::optional<OnlineController> controller;
  if (controller_mode) controller.emplace(cfg.controller, cfg.compression);
  std::vector<ControllerDecision> decisions;
  bool compress_on = bank.has_value();
  std::int64_t last_move_step = 0;          ///< local step of the last enacted move
  std::vector<int> controller_evict;        ///< slots a decision evicts at the epoch break
  double prev_interval_sec_per_step = 0.0;  ///< previous interval's wall/step

  Rng root(cfg.seed);
  const auto shards = make_shards(train.size(), cfg.num_workers);
  std::vector<WorkerContext> ctx;
  ctx.reserve(max_slots);
  for (std::size_t w = 0; w < max_slots; ++w) {
    // Initial slots keep the historical stream ids; join slots (w >= n0)
    // draw from disjoint ranges so no stream is ever shared.
    const std::uint64_t sampler_stream = w < n0 ? w + 1 : 1000 + w;
    const std::uint64_t codec_stream = w < n0 ? cfg.num_workers + 1 + w : 2000 + w;
    WorkerContext c{
        prototype.clone(),
        MinibatchSampler(shards[w % shards.size()], cfg.batch_size, root.fork(sampler_stream)),
        root.fork(codec_stream),
        Tensor({cfg.batch_size, d}),
        {},
        std::vector<float>(p),
        std::vector<float>(p),
        {},
        {},
        0,
        0,
    };
    ctx.push_back(std::move(c));
  }

  // ------------------------------------------------------------------
  // Shared switch-controller state.  Three synchronization domains:
  //  * clock_mu/clock_cv guard the per-worker local clocks, the phase step
  //    quota, and the trigger/membership latches during async phases;
  //  * det_mu guards the straggler detector;
  //  * everything else (phase index, protocol, lr, BSP round state, phase
  //    stats, the alive set) is only mutated inside the drain-barrier
  //    completion, by worker 0 between BSP round barriers, or by the main
  //    thread while every worker thread is joined — all points where a
  //    barrier or thread join/spawn provides the happens-before edge.
  // ------------------------------------------------------------------
  std::mutex clock_mu;
  std::condition_variable clock_cv;
  std::vector<std::int64_t> clock(max_slots, 0);  ///< local steps in current phase
  std::int64_t quota = 0;          ///< effective step count this epoch segment runs to
  std::int64_t phase_quota = 0;    ///< the phase's full budget (quota <= phase_quota)
  bool trigger_fired = false;      ///< reactive schedule trigger latched
  bool membership_fired = false;   ///< reactive membership latched (evict at drain)

  std::mutex det_mu;
  StragglerDetector detector(max_slots, cfg.detector);
  if (max_slots > cfg.num_workers) detector.set_active(coord.active());

  std::vector<char> alive(max_slots, 0);
  for (int s : coord.active()) alive[static_cast<std::size_t>(s)] = 1;
  std::size_t n_alive = coord.alive_count();
  std::size_t leader = 0;  ///< first alive slot (BSP aggregator role)

  std::size_t phase_idx = 0;
  Protocol proto = plan[0].protocol;
  double lr = phase_lr[0];
  std::int64_t ssp_bound = 0;
  std::int64_t done = 0;             ///< local steps per worker in finished phases
  std::int64_t phase_steps_done = 0; ///< steps of the current phase finished in prior epochs
  bool run_over = false;
  bool epoch_over = false;           ///< quiesce threads for a membership transition

  std::vector<float> agg(p);              // BSP aggregation buffer (leader)
  std::vector<float> shared_snapshot(p);  // BSP round snapshot
  std::vector<float> eval_params(cfg.eval_hook ? p : 0);  // eval_hook scratch
  std::int64_t rounds_done = 0;           // BSP rounds completed in current phase
  bool bsp_phase_over = false;

  // Worker-thread failure containment: an exception escaping a worker body
  // must surface as a catchable error on the calling thread, not a
  // std::terminate.  The first thrower records itself, raises `aborted`
  // (under clock_mu so parked SSP waiters cannot miss the wake), and drops
  // out of both barriers; every other worker observes the flag at its next
  // coherent point and drains out, the drain completion turns the run off,
  // and the main thread rethrows after joining.
  std::mutex error_mu;
  std::exception_ptr worker_error;
  std::atomic<bool> aborted{false};

  std::atomic<std::int64_t> total_updates{0};
  std::atomic<std::int64_t> phase_max_gap{0};
  std::int64_t phase_start_updates = 0;
  SteadyClock::time_point run_start = SteadyClock::now();
  SteadyClock::time_point phase_start = run_start;

  std::vector<ThreadedPhaseStats> stats;
  stats.reserve(plan.size());
  std::vector<ThreadedMembershipStats> membership_stats;
  membership_stats.reserve(cfg.elastic.plan.size() + 8);
  std::int64_t run_async_staleness = 0;  // run totals over async-phase pushes
  std::int64_t run_async_updates = 0;

  // ------------------------------------------------------------------
  // Observability (off by default).  `obs_on` is sampled once per run so a
  // mid-run toggle cannot split a run across regimes; when false, every
  // instrumentation site below reduces to one branch on a stack bool and
  // the run is bit-identical to an uninstrumented build.  Recording never
  // feeds back into the computation.
  // ------------------------------------------------------------------
  const bool obs_on = obs::enabled();
  obs::Counter* m_steps = nullptr;
  obs::Counter* m_switches = nullptr;
  obs::Counter* m_snapshots = nullptr;
  obs::Counter* m_recoveries = nullptr;
  obs::Counter* m_straggler_delays = nullptr;
  obs::Histogram* h_step_seconds = nullptr;
  obs::Histogram* h_drain_wait = nullptr;
  if (obs_on) {
    auto& reg = obs::metrics();
    const std::vector<double> time_buckets{1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
                                           0.01, 0.03, 0.1,  0.3,  1.0,  3.0};
    m_steps = &reg.counter("ss_threaded_steps_total", "Worker minibatch steps completed");
    m_switches =
        &reg.counter("ss_threaded_switches_total", "Protocol switches enacted at drain barriers");
    m_snapshots = &reg.counter("ss_threaded_snapshots_total", "Parameter snapshots captured");
    m_recoveries =
        &reg.counter("ss_threaded_recoveries_total", "Membership recovery passes applied");
    m_straggler_delays =
        &reg.counter("ss_threaded_straggler_delays_total", "Injected straggler delays");
    h_step_seconds = &reg.histogram("ss_threaded_step_seconds", time_buckets,
                                    "Compute-side step time per worker (seconds)");
    h_drain_wait = &reg.histogram("ss_threaded_drain_wait_seconds", time_buckets,
                                  "Time parked at the drain barrier (seconds)");
    if (obs::tracing()) {
      obs::tracer().set_track_name(0, "ps/control");
      for (std::size_t w = 0; w < max_slots; ++w)
        obs::tracer().set_track_name(static_cast<int>(w) + 1,
                                     "worker " + std::to_string(w));
    }
  }
  /// Span helper: records the [t0, t1) interval on `track` plus any metrics
  /// the caller already updated.  Only called under `obs_on`.
  auto obs_span = [](int track, const char* name, SteadyClock::time_point t0,
                     SteadyClock::time_point t1, std::vector<obs::TraceArg> args = {}) {
    if (!obs::tracing()) return;
    auto& tr = obs::tracer();
    tr.complete(track, name, tr.to_us(t0), tr.to_us(t1) - tr.to_us(t0), std::move(args));
  };

  // Asynchronous snapshots for crash recovery: a run-start snapshot gives
  // recovery a floor, the background cadence bounds the loss window.
  SnapshotStore store;
  std::optional<AsyncSnapshotter> snapshotter;
  auto capture_snapshot = [&] {
    const SteadyClock::time_point t0 = obs_on ? SteadyClock::now() : SteadyClock::time_point{};
    auto snap = ps.snapshot_checkpoint(total_updates.load(std::memory_order_relaxed));
    if (obs_on) {
      m_snapshots->add();
      obs_span(0, "snapshot", t0, SteadyClock::now(),
               {obs::arg("global_step", snap.global_step)});
    }
    return snap;
  };
  auto snapshot_progress = [&total_updates] {
    return total_updates.load(std::memory_order_relaxed);
  };
  // Snapshots only pay off when something can restore them: a scripted
  // crash under kRestoreSnapshot.  Join/leave-only, reactive, and
  // kKeepLive runs skip the background thread and its periodic full-PS
  // copies entirely (the sim engine applies the same gate).
  bool plan_has_crash = false;
  for (const MembershipEvent& e : cfg.elastic.plan.events())
    plan_has_crash |= e.kind == MembershipEventKind::kCrash;
  const bool snapshots_needed =
      elastic_mode && plan_has_crash && cfg.elastic.recovery == RecoveryMode::kRestoreSnapshot;
  if (snapshots_needed) {
    if (cfg.elastic.snapshot_interval > 0) {
      snapshotter.emplace(capture_snapshot, snapshot_progress, cfg.elastic.snapshot_interval,
                          store);
      snapshotter->snapshot_now();  // run-start floor; also arms the cadence
    } else {
      store.put(capture_snapshot());  // the only snapshot a crash can restore
    }
  }

  auto min_clock = [&] {  // callers hold clock_mu; alive slots only
    std::int64_t m = std::numeric_limits<std::int64_t>::max();
    for (std::size_t s = 0; s < max_slots; ++s)
      if (alive[s]) m = std::min(m, clock[s]);
    return m;
  };
  auto max_clock = [&] {  // callers hold clock_mu; alive slots only
    std::int64_t m = 0;
    for (std::size_t s = 0; s < max_slots; ++s)
      if (alive[s]) m = std::max(m, clock[s]);
    return m;
  };

  /// Arm phase `idx` from its beginning.  Runs before the threads start,
  /// inside the drain barrier's completion, or between epochs — never
  /// concurrently with a worker step.
  auto enter_phase = [&](std::size_t idx) {
    const Protocol prev_proto = proto;
    phase_idx = idx;
    const SwitchPhase& ph = plan[idx];
    proto = ph.protocol;
    lr = phase_lr[idx];
    ssp_bound = ph.ssp_staleness_bound >= 0 ? ph.ssp_staleness_bound : cfg.ssp_staleness_bound;
    const bool last = idx + 1 == plan.size();
    const std::int64_t remaining = cfg.steps_per_worker - done;
    phase_quota = SwitchSchedule::phase_budget(ph, last, remaining);
    // Controller mode: every interval ends at a drain barrier so the
    // controller gets its decision point; the run tail may be shorter.
    if (controller_mode) phase_quota = std::min(phase_quota, cfg.controller.decision_interval);
    phase_steps_done = 0;
    quota = phase_quota;
    if (elastic_mode) {
      // Stop exactly at the next scripted membership event so it resolves
      // at a drain barrier where every worker has the same local step.
      const std::int64_t cap = coord.next_event_step(done);
      if (cap > 0) quota = std::min(quota, cap - done);
    }
    trigger_fired = false;
    std::fill(clock.begin(), clock.end(), 0);
    rounds_done = 0;
    bsp_phase_over = false;
    phase_max_gap.store(0, std::memory_order_relaxed);
    phase_start_updates = total_updates.load(std::memory_order_relaxed);
    phase_start = SteadyClock::now();
    // Fresh snapshot for a BSP phase entry: in-flight pushes of the previous
    // phase are all applied (pushes are synchronous and every worker is
    // parked at the drain barrier), so this is the reconciled parameter
    // state the next phase starts from.
    ps.pull(std::span<float>(shared_snapshot));
    if (obs_on) {
      if (proto != prev_proto) m_switches->add();
      if (obs::tracing()) {
        if (proto != prev_proto)
          obs::tracer().instant(0, "protocol_switch",
                                {obs::arg("from", protocol_name(prev_proto)),
                                 obs::arg("to", protocol_name(proto))});
        obs::tracer().instant(0, "phase_start",
                              {obs::arg("phase", static_cast<std::int64_t>(idx)),
                               obs::arg("protocol", protocol_name(proto)),
                               obs::arg("quota", quota)});
      }
    }
  };
  enter_phase(0);

  /// Resume the current phase after a membership transition: same phase
  /// budget, clocks fast-forwarded to the steps already done, caps and lr
  /// refreshed for the new cluster.
  auto rearm_phase = [&] {
    lr = phase_lr[phase_idx];
    quota = phase_quota;
    if (elastic_mode) {
      const std::int64_t cap = coord.next_event_step(done + phase_steps_done);
      if (cap > 0) quota = std::min(quota, cap - done);
    }
    trigger_fired = false;
    std::fill(clock.begin(), clock.end(), phase_steps_done);
    rounds_done = phase_steps_done;
    bsp_phase_over = false;
    // The epoch resumes from the reconciled post-recovery parameters.
    ps.pull(std::span<float>(shared_snapshot));
  };

  /// Controller decision point: runs inside the drain completion with every
  /// worker parked.  Settles the previous decision's realized gain from the
  /// finished interval's throughput, harvests the per-worker compute-span
  /// accumulators into MeasuredPhaseCosts, asks the controller for the next
  /// move, and arms the next interval by appending it to the dynamic plan.
  /// A protocol/bound/compression move applies in place (the same live
  /// transition a schedule phase gets); an eviction move quiesces the epoch
  /// and resolves through apply_recovery like a reactive eviction.
  auto controller_step = [&](const ThreadedPhaseStats& s) {
    const double sec_per_step =
        s.steps > 0 && s.wall_seconds > 0.0 ? s.wall_seconds / static_cast<double>(s.steps)
                                            : 0.0;
    if (!decisions.empty() && prev_interval_sec_per_step > 0.0 && sec_per_step > 0.0)
      decisions.back().realized_gain = 1.0 - sec_per_step / prev_interval_sec_per_step;
    prev_interval_sec_per_step = sec_per_step;

    MeasuredPhaseCosts measured;
    measured.num_workers = n_alive;
    measured.batch_size = cfg.batch_size;
    measured.push_bytes = static_cast<double>(dense_bytes);
    std::vector<double> means;
    means.reserve(n_alive);
    double max_mean = 0.0;
    int max_slot = -1;
    for (std::size_t w = 0; w < max_slots; ++w) {
      WorkerContext& c = ctx[w];
      if (alive[w] && c.phase_step_count > 0) {
        const double mean = c.phase_step_seconds / static_cast<double>(c.phase_step_count);
        means.push_back(mean);
        if (mean > max_mean) {
          max_mean = mean;
          max_slot = static_cast<int>(w);
        }
      }
      c.phase_step_seconds = 0.0;
      c.phase_step_count = 0;
    }
    if (!means.empty()) {
      std::sort(means.begin(), means.end());
      // Lower median: robust to the straggler itself for any cluster >= 2.
      const double median = means[(means.size() - 1) / 2];
      measured.step_seconds = median;
      measured.straggler_factor = median > 0.0 ? max_mean / median : 1.0;
      measured.straggler_worker = max_slot;
    }
    if (run_over) return;  // realized gain settled; nothing left to decide

    ControllerDecision d;
    try {
      d = controller->decide(done, proto, static_cast<int>(ssp_bound), compress_on, measured,
                             done - last_move_step, cfg.steps_per_worker - done);
    } catch (const std::exception& e) {
      // decide() must not take down the run from a noexcept completion:
      // fall back to holding the current configuration.
      d = ControllerDecision{};
      d.at_step = done;
      d.protocol_before = proto;
      d.reason = std::string("hold:error ") + e.what();
    } catch (...) {
      d = ControllerDecision{};
      d.at_step = done;
      d.protocol_before = proto;
      d.reason = "hold:error unknown";
    }

    Protocol next_proto = proto;
    int next_bound = static_cast<int>(ssp_bound);
    const bool evict = d.enacted && d.chosen.evict_straggler;
    if (d.enacted) {
      last_move_step = done;
      if (evict) {
        controller_evict.assign(1, d.measured.straggler_worker);
        membership_fired = true;
      } else {
        next_proto = d.chosen.protocol;
        next_bound = d.chosen.ssp_staleness_bound;
        compress_on = d.chosen.compress && bank.has_value();
      }
    }
    decisions.push_back(std::move(d));
    plan.push_back(SwitchPhase{next_proto, SwitchTrigger::kStepCount, 0, next_bound});
    phase_lr.push_back(lr_for_phase(plan.size() - 1, n_alive));
    if (evict) {
      // Quiesce the epoch; apply_recovery retires the slot and enters the
      // appended interval with the shrunk cluster.
      epoch_over = true;
      return;
    }
    enter_phase(plan.size() - 1);
  };

  /// The drain-barrier transition.  Runs on exactly one thread while every
  /// worker is parked at the barrier.  Three outcomes: the phase completed
  /// (record it, then arm the next phase live or hand off to the epoch loop
  /// if a membership event is due), the run completed, or a membership
  /// boundary interrupted the phase mid-way (quiesce for recovery).
  const std::function<void()> on_drain = [&]() {
    if (aborted.load()) {
      // A worker failed: no transition — stop the run so every surviving
      // worker exits after the barrier and the main thread can rethrow.
      run_over = true;
      return;
    }
    const std::int64_t reached = clock[leader];  // equal across alive workers
    const bool phase_complete = trigger_fired || reached >= phase_quota;
    if (!phase_complete) {
      // A scripted membership step or the reactive eviction latch stopped
      // the epoch inside the phase; the phase's accumulators carry over.
      phase_steps_done = reached;
      epoch_over = true;
      return;
    }
    ThreadedPhaseStats s;
    s.protocol = proto;
    s.ended_by_trigger = trigger_fired;
    s.start_step = done;
    s.steps = reached;
    s.updates = total_updates.load(std::memory_order_relaxed) - phase_start_updates;
    s.max_clock_gap = phase_max_gap.load(std::memory_order_relaxed);
    std::int64_t staleness_sum = 0;
    for (auto& c : ctx) {
      staleness_sum += c.phase_staleness_sum;
      s.push_bytes += c.phase_push_bytes;
      c.phase_staleness_sum = 0;
      c.phase_push_bytes = 0;
      if (!controller_mode) {
        // Controller mode harvests (and resets) these in controller_step.
        c.phase_step_seconds = 0.0;
        c.phase_step_count = 0;
      }
    }
    if (proto != Protocol::kBsp && s.updates > 0) {
      s.mean_staleness = static_cast<double>(staleness_sum) / static_cast<double>(s.updates);
      run_async_staleness += staleness_sum;
      run_async_updates += s.updates;
    }
    const SteadyClock::time_point now = SteadyClock::now();
    s.wall_seconds = seconds_between(phase_start, now);
    if (s.wall_seconds > 0.0)
      s.updates_per_sec = static_cast<double>(s.updates) / s.wall_seconds;
    stats.push_back(s);
    done += s.steps;
    phase_steps_done = 0;
    run_over = done >= cfg.steps_per_worker;
    if (cfg.eval_hook) {
      // Consistent parameter snapshot: every worker is parked, all pushes
      // are applied.  Hook time is charged to the run clock (honest: the
      // controller's decision time is charged the same way), not to any
      // worker's step measurements.
      ps.pull(std::span<float>(eval_params));
      cfg.eval_hook(done, seconds_between(run_start, now), eval_params);
    }
    if (controller_mode) {
      controller_step(s);
      return;
    }
    if (run_over) return;
    if (elastic_mode && (membership_fired || coord.events_due(done))) {
      // Membership change due exactly at the phase boundary: the epoch loop
      // applies it, then enters the next phase.
      epoch_over = true;
      return;
    }
    enter_phase(std::min(phase_idx + 1, plan.size() - 1));
  };

  /// Wall-clock straggler injection: a worker slowed at the current elapsed
  /// time sleeps (factor - 1) x its measured step time, emulating the
  /// paper's injected per-message latency without consuming CPU.
  auto inject_delay = [&](std::size_t w, SteadyClock::time_point step_start) {
    if (!inject_stragglers) return;
    const double elapsed = seconds_between(run_start, SteadyClock::now());
    const double factor =
        cfg.stragglers.slow_factor(static_cast<int>(w), VTime::from_seconds(elapsed));
    if (factor <= 1.0) return;
    const double step_seconds = seconds_between(step_start, SteadyClock::now());
    const SteadyClock::time_point t0 = obs_on ? SteadyClock::now() : SteadyClock::time_point{};
    std::this_thread::sleep_for(
        std::chrono::duration<double>(step_seconds * (factor - 1.0)));
    if (obs_on) {
      m_straggler_delays->add();
      obs_span(static_cast<int>(w) + 1, "straggler_delay", t0, SteadyClock::now(),
               {obs::arg("factor", factor)});
    }
  };

  /// Feed one step observation to the shared detector.  Returns true when a
  /// detection pass ran *and* the reactive condition holds afterwards — the
  /// current phase's schedule trigger, or (reactive membership) any flagged
  /// worker.  Only async workers act on the return value; during BSP phases
  /// the leader evaluates the condition once per round instead, so every
  /// worker of a round sees the same decision.
  auto feed_detector = [&](std::size_t w, SteadyClock::time_point step_start) -> bool {
    if (!use_detector) return false;
    const double secs = seconds_between(step_start, SteadyClock::now());
    const std::lock_guard<std::mutex> lock(det_mu);
    if (!detector.observe(static_cast<int>(w), cfg.batch_size, VTime::from_seconds(secs)))
      return false;
    if (reactive_membership) return detector.any_straggler();
    switch (plan[phase_idx].trigger) {
      case SwitchTrigger::kStragglerDetected:
        return detector.any_straggler();
      case SwitchTrigger::kStragglerCleared:
        return !detector.any_straggler();
      case SwitchTrigger::kStepCount:
        return false;
    }
    return false;
  };

  /// Latch a fired reactive condition (async phases): lower the epoch quota
  /// to a common step count every worker can still reach — the fastest
  /// worker's clock plus one — and wake SSP waiters so they re-check it.
  /// `fired` is trigger_fired (schedule trigger) or membership_fired
  /// (reactive eviction).
  auto latch = [&](bool& fired) {
    {
      const std::lock_guard<std::mutex> lock(clock_mu);
      if (!fired) {
        fired = true;
        quota = std::min(quota, max_clock() + 1);
      }
    }
    clock_cv.notify_all();
  };

  // ------------------------------------------------------------------
  // Membership recovery: runs on the main thread with every worker thread
  // joined (full quiesce), so no lock is needed for phase/membership state.
  // ------------------------------------------------------------------
  auto apply_recovery = [&] {
    const SteadyClock::time_point rec_start = SteadyClock::now();
    const std::int64_t progress = done + phase_steps_done;
    std::vector<AppliedMembershipEvent> applied;
    if (membership_fired) {
      // Reactive eviction: the controller names its slot explicitly;
      // the reactive membership plan evicts detector-flagged workers
      // (floor-clamped either way).
      std::vector<int> flagged;
      if (controller_mode) {
        flagged = controller_evict;
        controller_evict.clear();
      } else {
        const std::lock_guard<std::mutex> lock(det_mu);
        flagged = detector.stragglers();
      }
      applied = coord.evict(flagged, progress);
      membership_fired = false;
    }
    {
      auto scheduled = coord.advance_to(progress);
      applied.insert(applied.end(), scheduled.begin(), scheduled.end());
    }
    bool crashed = false;
    for (const auto& a : applied) crashed |= a.event.kind == MembershipEventKind::kCrash;
    std::int64_t updates_lost = 0;
    if (crashed && cfg.elastic.recovery == RecoveryMode::kRestoreSnapshot) {
      if (const auto snap = store.latest()) {
        updates_lost =
            total_updates.load(std::memory_order_relaxed) - snap->global_step;
        // Roll parameters + velocity back to the last asynchronous snapshot:
        // every update since it is lost, bounding the damage to one snapshot
        // interval.  Surviving workers keep their error-feedback residuals —
        // the mass a codec dropped is still untransmitted after the rollback.
        ps.restore_checkpoint(*snap);
      }
    }
    // Refresh the membership-derived state for the next epoch.
    std::fill(alive.begin(), alive.end(), char{0});
    for (int s : coord.active()) alive[static_cast<std::size_t>(s)] = 1;
    n_alive = coord.alive_count();
    leader = 0;
    while (leader < max_slots && !alive[leader]) ++leader;
    // Re-derive hyper-parameters for the new cluster size (derive_hyper's
    // linear scaling for synchronous phases; async phases keep lr).
    for (std::size_t i = 0; i < plan.size(); ++i) phase_lr[i] = lr_for_phase(i, n_alive);
    {
      // Cluster reconfiguration: historical throughput is not comparable,
      // and retired slots must not block detector warm-up.
      const std::lock_guard<std::mutex> lock(det_mu);
      detector.set_active(coord.active());
    }
    // Resume the interrupted phase, or enter the next one if the previous
    // epoch finished its phase exactly at the membership boundary.
    if (phase_steps_done == 0)
      enter_phase(std::min(phase_idx + 1, plan.size() - 1));
    else
      rearm_phase();
    const double rec_seconds = seconds_between(rec_start, SteadyClock::now());
    if (obs_on) {
      m_recoveries->add();
      obs_span(0, "recovery", rec_start, SteadyClock::now(),
               {obs::arg("events", static_cast<std::int64_t>(applied.size())),
                obs::arg("updates_lost", updates_lost)});
    }
    bool loss_attributed = false;  // one restore per pass -> charge it once
    for (const auto& a : applied) {
      ThreadedMembershipStats ms;
      ms.kind = a.event.kind;
      ms.worker = a.event.worker;
      ms.at_step = a.event.at_step;
      ms.workers_after = a.workers_after;
      ms.lr_after = lr;
      if (a.event.kind == MembershipEventKind::kCrash && !loss_attributed) {
        ms.updates_lost = updates_lost;
        loss_attributed = true;
      }
      ms.recovery_wall_seconds = rec_seconds;
      membership_stats.push_back(ms);
    }
  };

  // ------------------------------------------------------------------
  // Epoch loop: one iteration per contiguous stretch of a fixed worker set.
  // Non-elastic runs execute exactly one epoch (every phase transition is
  // the live in-barrier kind); membership events end the epoch at the drain
  // barrier, the recovery runs with all threads joined, and the next epoch
  // respawns threads (and right-sized barriers) for the new cluster.
  // ------------------------------------------------------------------
  while (!run_over) {
    std::barrier round_barrier(static_cast<std::ptrdiff_t>(n_alive));
    std::barrier<DrainCompletion> drain_barrier(static_cast<std::ptrdiff_t>(n_alive),
                                                DrainCompletion{&on_drain});

    // Round-based BSP: all workers compute on the same snapshot, the leader
    // aggregates after the barrier and applies one averaged update.  The
    // end-of-phase decision (quota reached, reactive trigger, or reactive
    // eviction) is made once per round by the leader between the two
    // barriers, so every worker leaves the phase at the same round.
    auto run_bsp_phase = [&](std::size_t w) {
      auto& c = ctx[w];
      std::vector<std::uint32_t> indices;
      while (!bsp_phase_over) {
        if (aborted.load()) {
          // A peer failed.  Leave its barrier slot behind so workers still
          // parked in this round are released, then head for the drain
          // barrier (worker_fn arrives there after we return).  Arriving at
          // the drain while others still wait at the round barrier would
          // deadlock both groups — hence the drop, not a plain break.
          round_barrier.arrive_and_drop();
          return;
        }
        if (cfg.pre_step_hook) cfg.pre_step_hook(w, done + clock[w]);
        const SteadyClock::time_point step_start = SteadyClock::now();
        c.sampler.next_batch(indices);
        train.gather(indices, c.batch_x, c.batch_y);
        c.model.gradient_at(shared_snapshot, c.batch_x, c.batch_y, c.grad);
        if (bank && compress_on) {
          // Each worker compresses its own push through its bank slot; the
          // aggregator decodes, so the PS math sees the lossy values exactly
          // as the simulator's BSP path does.
          c.push = bank->encode(static_cast<int>(w), c.grad, c.codec_rng);
          c.phase_push_bytes += static_cast<std::int64_t>(c.push.wire_size);
        } else {
          c.phase_push_bytes += dense_bytes;
        }
        inject_delay(w, step_start);
        // Compute-side span (pre-barrier): the controller's per-worker cost
        // sample — injected delays land in the slow worker's own mean.
        const SteadyClock::time_point step_end = SteadyClock::now();
        c.phase_step_seconds += seconds_between(step_start, step_end);
        ++c.phase_step_count;
        if (obs_on) {
          m_steps->add();
          h_step_seconds->observe(seconds_between(step_start, step_end));
          obs_span(static_cast<int>(w) + 1, "step", step_start, step_end);
        }
        feed_detector(w, step_start);  // the leader evaluates the condition below
        round_barrier.arrive_and_wait();  // all gradients ready
        if (w == leader) {
          std::fill(agg.begin(), agg.end(), 0.0f);
          for (std::size_t s = 0; s < max_slots; ++s) {
            if (!alive[s]) continue;
            if (bank && compress_on)
              ctx[s].push.add_into(agg);
            else
              ops::add_inplace(std::span<float>(agg), std::span<const float>(ctx[s].grad));
          }
          ops::scale_inplace(std::span<float>(agg), 1.0f / static_cast<float>(n_alive));
          ps.push_scalar(agg, lr, ps.version());
          total_updates.fetch_add(1, std::memory_order_relaxed);
          ps.pull(std::span<float>(shared_snapshot));
          ++rounds_done;
          bool over = rounds_done >= quota;
          if (!over && use_detector &&
              (reactive_membership || plan[phase_idx].trigger != SwitchTrigger::kStepCount)) {
            const std::lock_guard<std::mutex> lock(det_mu);
            if (reactive_membership) {
              if (detector.any_straggler()) {
                over = true;
                membership_fired = true;
              }
            } else {
              const bool cond = plan[phase_idx].trigger == SwitchTrigger::kStragglerDetected
                                    ? detector.any_straggler()
                                    : !detector.any_straggler();
              if (cond) {
                over = true;
                trigger_fired = true;
              }
            }
          }
          bsp_phase_over = over;
        }
        round_barrier.arrive_and_wait();  // updated snapshot + decision visible
        ++clock[w];  // own slot; read again only after the next barrier
      }
    };

    // ASP: free-running workers.  SSP: free-running within the staleness
    // bound — a worker whose local clock would run more than `bound` steps
    // ahead of the slowest parks on the condition variable until the
    // laggard catches up (or a latch lowers the quota below its clock).
    auto run_async_phase = [&](std::size_t w) {
      auto& c = ctx[w];
      const bool bounded = proto == Protocol::kSsp;
      std::vector<std::uint32_t> indices;
      while (true) {
        std::int64_t my = 0;
        {
          std::unique_lock<std::mutex> lock(clock_mu);
          // A dead peer's clock stops advancing, so without the aborted
          // check an SSP waiter whose bound the dead peer anchors would
          // park forever; the thrower raises the flag under clock_mu and
          // notifies, so the wake cannot be lost.
          if (aborted.load() || clock[w] >= quota) break;
          if (bounded) {
            clock_cv.wait(lock, [&] {
              return aborted.load() || clock[w] >= quota ||
                     clock[w] - min_clock() <= ssp_bound;
            });
            if (aborted.load() || clock[w] >= quota) break;
          }
          const std::int64_t gap = clock[w] - min_clock();
          std::int64_t seen = phase_max_gap.load(std::memory_order_relaxed);
          while (gap > seen &&
                 !phase_max_gap.compare_exchange_weak(seen, gap, std::memory_order_relaxed)) {
          }
          my = clock[w];
        }
        if (cfg.pre_step_hook) cfg.pre_step_hook(w, done + my);
        const SteadyClock::time_point step_start = SteadyClock::now();
        ps.pull_with_versions(c.snapshot, c.pull_versions);
        c.sampler.next_batch(indices);
        train.gather(indices, c.batch_x, c.batch_y);
        c.model.gradient_at(c.snapshot, c.batch_x, c.batch_y, c.grad);
        inject_delay(w, step_start);
        if (bank && compress_on) {
          // Sparse (top-k) pushes lock only the shards holding kept
          // coordinates; dense quantized pushes sweep all shards like an
          // uncompressed push.
          const CompressedPush push = bank->encode(static_cast<int>(w), c.grad, c.codec_rng);
          c.phase_push_bytes += static_cast<std::int64_t>(push.wire_size);
          c.phase_staleness_sum += ps.push_compressed(push, lr, c.pull_versions);
        } else {
          c.phase_push_bytes += dense_bytes;
          c.phase_staleness_sum += ps.push(c.grad, lr, c.pull_versions);
        }
        total_updates.fetch_add(1, std::memory_order_relaxed);
        // Compute-side span (excludes the SSP park above): the controller's
        // per-worker cost sample.
        const SteadyClock::time_point step_end = SteadyClock::now();
        c.phase_step_seconds += seconds_between(step_start, step_end);
        ++c.phase_step_count;
        if (obs_on) {
          m_steps->add();
          h_step_seconds->observe(seconds_between(step_start, step_end));
          obs_span(static_cast<int>(w) + 1, "step", step_start, step_end);
        }
        if (feed_detector(w, step_start))
          latch(reactive_membership ? membership_fired : trigger_fired);
        {
          const std::lock_guard<std::mutex> lock(clock_mu);
          ++clock[w];
        }
        clock_cv.notify_all();
      }
    };

    // Every worker of this epoch executes the phase sequence, quiescing at
    // the drain barrier between phases.  The barrier's completion runs the
    // transition while all workers are parked, so phase state needs no lock;
    // an epoch-ending transition makes every worker exit so the main thread
    // can reshape the cluster.
    auto worker_fn = [&](std::size_t w) {
      try {
        while (true) {
          if (proto == Protocol::kBsp)
            run_bsp_phase(w);
          else
            run_async_phase(w);
          const SteadyClock::time_point drain_start =
              obs_on ? SteadyClock::now() : SteadyClock::time_point{};
          drain_barrier.arrive_and_wait();
          if (obs_on) {
            const SteadyClock::time_point drain_end = SteadyClock::now();
            h_drain_wait->observe(seconds_between(drain_start, drain_end));
            obs_span(static_cast<int>(w) + 1, "drain_wait", drain_start, drain_end);
          }
          if (run_over || epoch_over) break;
        }
      } catch (...) {
        // First failure wins; later ones (usually peers tripping over the
        // same cause) are dropped.
        {
          const std::lock_guard<std::mutex> lock(error_mu);
          if (!worker_error) worker_error = std::current_exception();
        }
        {
          // Under clock_mu so a concurrently-parking SSP waiter either sees
          // the flag in its predicate or is woken by the notify below.
          const std::lock_guard<std::mutex> lock(clock_mu);
          aborted.store(true);
        }
        clock_cv.notify_all();
        // Leave both barriers for good: peers parked at either are released
        // now, and the phases no longer expect this thread.
        round_barrier.arrive_and_drop();
        drain_barrier.arrive_and_drop();
      }
    };

    std::vector<std::thread> threads;
    threads.reserve(n_alive);
    for (std::size_t w = 0; w < max_slots; ++w)
      if (alive[w]) threads.emplace_back(worker_fn, w);
    for (auto& t : threads) t.join();

    if (worker_error) {
      // Every thread is joined (throwers via barrier drops, survivors via
      // the aborted run_over), so the failure surfaces as a plain exception
      // on the calling thread instead of a std::terminate.
      if (snapshotter) snapshotter->stop();
      std::rethrow_exception(worker_error);
    }
    if (run_over) break;
    // epoch_over: resolve the due membership events and re-arm.  The
    // snapshotter is parked across the recovery — a cadence capture walking
    // the shards concurrently with restore_checkpoint could store a torn
    // mix of pre- and post-restore slices as "latest" — and re-seeded with
    // the reconciled post-recovery state before the next epoch spawns.
    epoch_over = false;
    if (snapshotter) snapshotter->stop();
    apply_recovery();
    if (snapshotter) {
      snapshotter.emplace(capture_snapshot, snapshot_progress, cfg.elastic.snapshot_interval,
                          store);
      snapshotter->snapshot_now();
    }
  }

  if (snapshotter) snapshotter->stop();

  ThreadedTrainResult result;
  result.total_updates = total_updates.load();
  result.phases = std::move(stats);
  result.membership = std::move(membership_stats);
  result.snapshots_taken = elastic_mode ? store.count() : 0;
  result.decisions = std::move(decisions);
  for (const auto& s : result.phases) {
    result.max_clock_gap = std::max(result.max_clock_gap, s.max_clock_gap);
    result.push_bytes += s.push_bytes;
  }
  if (run_async_updates > 0)
    result.mean_staleness =
        static_cast<double>(run_async_staleness) / static_cast<double>(run_async_updates);
  result.final_params.resize(ps.num_params());
  ps.pull(result.final_params);
  return result;
}

}  // namespace ss
