#include "ps/sim_runtime.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/error.h"
#include "sim/event_queue.h"
#include "tensor/ops.h"

namespace ss {

namespace {

// Event kinds for the async protocols.
constexpr int kPullDone = 0;
constexpr int kPushArrive = 1;

}  // namespace

SimRuntime::SimRuntime(ClusterModel cluster, Model& grad_model, Model& eval_model,
                       const Dataset& train, const Dataset& eval_set, MetricsSink& sink)
    : cluster_(std::move(cluster)),
      grad_model_(grad_model),
      eval_model_(eval_model),
      train_(train),
      eval_set_(eval_set),
      sink_(sink) {}

double SimRuntime::momentum_at(const PhaseConfig& cfg, std::int64_t steps_into_phase) const {
  if (cfg.momentum_schedule) return cfg.momentum_schedule(steps_into_phase);
  return cfg.momentum;
}

void SimRuntime::maybe_eval(TrainingState& state, const PhaseConfig& cfg) {
  if (cfg.eval_interval <= 0) return;
  const std::int64_t bucket = state.global_step / cfg.eval_interval;
  if (bucket == last_eval_bucket_) return;
  last_eval_bucket_ = bucket;
  if (!state.ps.healthy()) return;  // divergence handled by the caller
  eval_model_.set_params(state.ps.params());
  const double acc = eval_model_.evaluate_accuracy(eval_set_);
  sink_.on_eval(state.global_step, state.clock, acc);
}

PhaseResult SimRuntime::run_phase(TrainingState& state, const PhaseConfig& cfg,
                                  const std::vector<int>& active_workers,
                                  const StragglerSchedule& stragglers,
                                  const StopPredicate& stop) {
  if (cfg.lr_schedule == nullptr) throw ConfigError("PhaseConfig: lr_schedule is required");
  if (active_workers.empty()) throw ConfigError("run_phase: no active workers");
  for (int w : active_workers)
    if (w < 0 || static_cast<std::size_t>(w) >= state.samplers.size())
      throw ConfigError("run_phase: active worker index out of range");
  // Reset the eval bucket so a fresh phase re-evaluates on its first boundary.
  last_eval_bucket_ = state.global_step / std::max<std::int64_t>(cfg.eval_interval, 1);

  switch (cfg.protocol) {
    case Protocol::kBsp:
      return run_bsp(state, cfg, active_workers, stragglers, stop);
    case Protocol::kAsp:
      return run_async(state, cfg, active_workers, stragglers, stop,
                       /*bounded_staleness=*/false, /*dynamic_bound=*/false);
    case Protocol::kSsp:
      return run_async(state, cfg, active_workers, stragglers, stop,
                       /*bounded_staleness=*/true, /*dynamic_bound=*/false);
    case Protocol::kDssp:
      return run_async(state, cfg, active_workers, stragglers, stop,
                       /*bounded_staleness=*/true, /*dynamic_bound=*/true);
    case Protocol::kKSync:
      return run_ksync(state, cfg, active_workers, stragglers, stop, /*batch_mode=*/false);
    case Protocol::kKBatchSync:
      return run_ksync(state, cfg, active_workers, stragglers, stop, /*batch_mode=*/true);
    case Protocol::kKAsync:
      return run_kasync(state, cfg, active_workers, stragglers, stop,
                        /*distinct_workers=*/true);
    case Protocol::kKBatchAsync:
      return run_kasync(state, cfg, active_workers, stragglers, stop,
                        /*distinct_workers=*/false);
  }
  throw ConfigError("run_phase: unknown protocol");
}

PhaseResult SimRuntime::run_bsp(TrainingState& state, const PhaseConfig& cfg,
                                const std::vector<int>& active,
                                const StragglerSchedule& stragglers, const StopPredicate& stop) {
  PhaseResult result;
  const std::size_t n = active.size();
  const std::size_t p = state.ps.num_params();
  const std::size_t b = cfg.per_worker_batch;
  const std::size_t d = train_.feature_dim();

  std::vector<float> snapshot(p);
  std::vector<float> grad(p);
  std::vector<float> grad_sum(p);
  Tensor batch_x({b, d});
  std::vector<int> batch_y;
  std::vector<std::uint32_t> indices;

  const VTime phase_start = state.clock;
  while (result.steps_done < cfg.step_budget) {
    // --- Parallel compute: every worker trains one minibatch on the same
    // parameter version; the barrier waits for the slowest.
    state.ps.pull(snapshot);
    std::fill(grad_sum.begin(), grad_sum.end(), 0.0f);
    double loss_sum = 0.0;
    VTime max_task = VTime::zero();
    // Compression shrinks the push in proportion to the codec's wire ratio.
    // The ratio is applied to the *calibrated* payload model, not the raw
    // parameter count, so setups whose payload_bytes stands in for a larger
    // real model keep a faithful relative speedup.
    const double push_bytes =
        cfg.compressor
            ? cluster_.spec().payload_bytes *
                  static_cast<double>(cfg.compressor->wire_bytes(p)) /
                  (static_cast<double>(p) * sizeof(float))
            : cluster_.spec().payload_bytes;
    for (std::size_t i = 0; i < n; ++i) {
      const int w = active[i];
      auto& wrng = state.worker_rngs[static_cast<std::size_t>(w)];
      const double slow = stragglers.slow_factor(w, state.clock);
      // pull (full parameters) + compute + push (possibly compressed).
      const VTime task = cluster_.transfer_time(slow) + cluster_.compute_time(wrng, slow, b) +
                         cluster_.transfer_time(slow, push_bytes);
      max_task = std::max(max_task, task);

      auto& sampler = state.samplers[static_cast<std::size_t>(w)];
      sampler.set_batch_size(b);
      sampler.next_batch(indices);
      train_.gather(indices, batch_x, batch_y);
      loss_sum += grad_model_.gradient_at(snapshot, batch_x, batch_y, grad);
      if (cfg.compressor) cfg.compressor->transform(w, grad, wrng);
      result.push_bytes += static_cast<std::int64_t>(std::llround(push_bytes));
      ops::add_inplace(std::span<float>(grad_sum), std::span<const float>(grad));

      TaskObservation tobs;
      tobs.worker = w;
      tobs.completed_at = state.clock + task;
      tobs.task_duration = task;
      tobs.images = b;
      sink_.on_task(tobs);
    }
    // Average the gradients (TF SyncReplicasOptimizer semantics): the
    // aggregated update is a true batch-(n*b) gradient step.
    ops::scale_inplace(std::span<float>(grad_sum), 1.0f / static_cast<float>(n));

    const double mult = cfg.lr_multiplier_schedule ? cfg.lr_multiplier_schedule(state.global_step)
                                                   : cfg.lr_multiplier;
    const double lr = cfg.lr_schedule->at(state.global_step) * mult;
    state.ps.optimizer().set_momentum(momentum_at(cfg, result.steps_done));
    state.ps.apply(grad_sum, lr);

    state.clock += max_task + cluster_.sync_overhead(n);
    state.global_step += static_cast<std::int64_t>(n);
    result.steps_done += static_cast<std::int64_t>(n);

    const double mean_loss = loss_sum / static_cast<double>(n);
    UpdateObservation uobs;
    uobs.global_step = state.global_step;
    uobs.time = state.clock;
    uobs.train_loss = mean_loss;
    uobs.staleness = 0;
    uobs.protocol = Protocol::kBsp;
    sink_.on_update(uobs);

    if (!std::isfinite(mean_loss) || mean_loss > cfg.divergence_loss_threshold ||
        !state.ps.healthy()) {
      result.end = PhaseEnd::kDiverged;
      result.elapsed = state.clock - phase_start;
      return result;
    }

    maybe_eval(state, cfg);

    if (stop && stop(state.clock, state.global_step)) {
      result.end = PhaseEnd::kStopRequested;
      result.trigger_step = state.global_step;
      result.elapsed = state.clock - phase_start;
      return result;
    }
  }
  result.end = PhaseEnd::kBudgetExhausted;
  result.elapsed = state.clock - phase_start;
  return result;
}

PhaseResult SimRuntime::run_async(TrainingState& state, const PhaseConfig& cfg,
                                  const std::vector<int>& active,
                                  const StragglerSchedule& stragglers, const StopPredicate& stop,
                                  bool bounded_staleness, bool dynamic_bound) {
  PhaseResult result;
  const std::size_t p = state.ps.num_params();
  const std::size_t b = cfg.per_worker_batch;
  const std::size_t d = train_.feature_dim();

  // Per-worker in-flight task state.
  struct InFlight {
    std::vector<float> snapshot;               // params pulled
    std::vector<std::uint32_t> indices;        // minibatch drawn at pull time
    std::vector<std::int64_t> pull_versions;   // per-shard versions at pull
    VTime pull_started;
    std::int64_t local_clock = 0;  // completed local steps (for SSP)
    bool parked = false;           // waiting on the SSP staleness bound
  };
  std::vector<InFlight> inflight(state.samplers.size());

  EventQueue queue;
  Tensor batch_x({b, d});
  std::vector<int> batch_y;
  std::vector<float> grad(p);

  const VTime phase_start = state.clock;
  std::int64_t total_staleness = 0;
  std::int64_t updates = 0;
  bool stop_spawning = false;  // no new pulls once the budget/stop is reached
  // DSSP (Zhao et al.): the effective bound floats in [s, s + r].  Each time
  // a fast worker would block, the bound is raised one notch (up to s + r)
  // so it can proceed; whenever all workers are within the base bound the
  // extra credit resets.  SSP is the special case r = 0.
  std::int64_t effective_bound = cfg.ssp_staleness_bound;

  auto min_local_clock = [&]() {
    std::int64_t m = std::numeric_limits<std::int64_t>::max();
    for (int w : active) m = std::min(m, inflight[static_cast<std::size_t>(w)].local_clock);
    return m;
  };

  auto start_pull = [&](int w, VTime now) {
    const double slow = stragglers.slow_factor(w, now);
    queue.schedule(now + cluster_.transfer_time(slow), kPullDone, w);
  };

  // Kick off: every active worker starts pulling at phase start, staggered
  // over up to one cycle.  Async task launches are never synchronized in a
  // real PS deployment (session setup times vary per node); starting all
  // workers in lockstep would push n near-identical gradients as a wave,
  // an artifact that destabilizes training right after a protocol switch.
  const VTime cycle = cluster_.mean_cycle(b);
  for (int w : active) {
    inflight[static_cast<std::size_t>(w)].snapshot.resize(p);
    const double offset = state.worker_rngs[static_cast<std::size_t>(w)].uniform();
    start_pull(w, state.clock + cycle.scaled(offset));
  }

  while (!queue.empty()) {
    const SimEvent ev = queue.pop();
    const int w = ev.worker;
    auto& fl = inflight[static_cast<std::size_t>(w)];

    if (ev.kind == kPullDone) {
      // Snapshot the *current* parameters: any pushes applied while this
      // pull was in flight are visible, later ones are not.  The per-shard
      // version vector is what staleness is measured against at push time.
      state.ps.pull(fl.snapshot);
      state.ps.shard_versions(fl.pull_versions);
      fl.pull_started = ev.time;
      auto& sampler = state.samplers[static_cast<std::size_t>(w)];
      sampler.set_batch_size(b);
      sampler.next_batch(fl.indices);
      const double slow = stragglers.slow_factor(w, ev.time);
      const double push_bytes =
          cfg.compressor
              ? cluster_.spec().payload_bytes *
                    static_cast<double>(cfg.compressor->wire_bytes(p)) /
                    (static_cast<double>(p) * sizeof(float))
              : cluster_.spec().payload_bytes;
      const VTime busy =
          cluster_.compute_time(state.worker_rngs[static_cast<std::size_t>(w)], slow, b) +
          cluster_.transfer_time(slow, push_bytes);
      queue.schedule(ev.time + busy, kPushArrive, w);
      continue;
    }

    // kPushArrive: the gradient (computed against the pulled snapshot)
    // reaches the PS and is applied immediately.  Compressed pushes travel
    // as a CompressedPush: sparse (top-k) pushes apply per shard — touching
    // and versioning only the shards owning kept coordinates, exactly like
    // the threaded runtime's per-shard fast path — while dense quantized
    // pushes apply like an uncompressed gradient.
    train_.gather(fl.indices, batch_x, batch_y);
    const double loss = grad_model_.gradient_at(fl.snapshot, batch_x, batch_y, grad);
    std::optional<CompressedPush> push;
    if (cfg.compressor) {
      push = cfg.compressor->encode(w, grad, state.worker_rngs[static_cast<std::size_t>(w)]);
      result.push_bytes += static_cast<std::int64_t>(std::llround(
          cluster_.spec().payload_bytes * static_cast<double>(cfg.compressor->wire_bytes(p)) /
          (static_cast<double>(p) * sizeof(float))));
    } else {
      result.push_bytes += static_cast<std::int64_t>(cluster_.spec().payload_bytes);
    }
    const std::int64_t staleness =
        push && push->sparse()
            ? state.ps.staleness_since(fl.pull_versions, push->indices)
            : state.ps.staleness_since(fl.pull_versions);

    const double mult = cfg.lr_multiplier_schedule ? cfg.lr_multiplier_schedule(state.global_step)
                                                   : cfg.lr_multiplier;
    const double lr = cfg.lr_schedule->at(state.global_step) * mult;
    state.ps.optimizer().set_momentum(momentum_at(cfg, result.steps_done));
    if (push && push->sparse())
      state.ps.apply_sparse(push->indices, push->values, lr);
    else if (push)
      state.ps.apply(push->values, lr);
    else
      state.ps.apply(grad, lr);
    state.clock = ev.time + cluster_.spec().async_apply;
    state.global_step += 1;
    result.steps_done += 1;
    total_staleness += staleness;
    ++updates;
    fl.local_clock += 1;

    TaskObservation tobs;
    tobs.worker = w;
    tobs.completed_at = state.clock;
    tobs.task_duration = state.clock - fl.pull_started;
    tobs.images = b;
    sink_.on_task(tobs);

    UpdateObservation uobs;
    uobs.global_step = state.global_step;
    uobs.time = state.clock;
    uobs.train_loss = loss;
    uobs.staleness = staleness;
    uobs.protocol = dynamic_bound ? Protocol::kDssp
                    : bounded_staleness ? Protocol::kSsp
                                        : Protocol::kAsp;
    sink_.on_update(uobs);

    if (!std::isfinite(loss) || loss > cfg.divergence_loss_threshold || !state.ps.healthy()) {
      result.end = PhaseEnd::kDiverged;
      queue.clear();
      break;
    }

    maybe_eval(state, cfg);

    if (!stop_spawning && stop && stop(state.clock, state.global_step)) {
      result.end = PhaseEnd::kStopRequested;
      result.trigger_step = state.global_step;
      stop_spawning = true;
      queue.clear();  // in-flight work is abandoned, as in a checkpoint-restart
      break;
    }

    if (result.steps_done >= cfg.step_budget) {
      stop_spawning = true;
      queue.clear();  // drain: remaining in-flight tasks are discarded
      break;
    }

    // Schedule this worker's next cycle, honoring the (possibly dynamic)
    // staleness bound.
    if (!stop_spawning) {
      const std::int64_t gap = fl.local_clock - min_local_clock();
      bool proceed = true;
      if (bounded_staleness) {
        if (gap > effective_bound) {
          if (dynamic_bound &&
              effective_bound < cfg.ssp_staleness_bound + cfg.dssp_staleness_upper) {
            ++effective_bound;  // DSSP: lend credit instead of blocking
          } else {
            proceed = false;
          }
        }
      }
      if (proceed) {
        // The gap at a step start is the conformance metric SSP bounds.
        result.max_clock_gap = std::max(result.max_clock_gap, gap);
        start_pull(w, state.clock);
      } else {
        fl.parked = true;  // must wait for stragglers to catch up
      }
      // This push may have advanced the minimum clock: wake parked workers
      // whose constraint now holds, and relax the DSSP credit once the
      // cluster is back within the base bound.
      if (bounded_staleness) {
        const std::int64_t m = min_local_clock();
        std::int64_t max_gap = 0;
        for (int other : active) {
          auto& ofl = inflight[static_cast<std::size_t>(other)];
          max_gap = std::max(max_gap, ofl.local_clock - m);
          if (ofl.parked && ofl.local_clock - m <= effective_bound) {
            ofl.parked = false;
            result.max_clock_gap = std::max(result.max_clock_gap, ofl.local_clock - m);
            start_pull(other, state.clock);
          }
        }
        if (dynamic_bound && max_gap <= cfg.ssp_staleness_bound)
          effective_bound = cfg.ssp_staleness_bound;
      }
    }
  }

  if (updates > 0)
    result.mean_staleness = static_cast<double>(total_staleness) / static_cast<double>(updates);
  result.elapsed = state.clock - phase_start;
  return result;
}

namespace {

/// Effective K for the K-variant protocols: defaults to the active cluster
/// size, clamped to [1, n].
std::size_t effective_k(const PhaseConfig& cfg, std::size_t n) {
  const std::size_t k = cfg.k_param > 0 ? static_cast<std::size_t>(cfg.k_param) : n;
  return std::clamp<std::size_t>(k, 1, n);
}

}  // namespace

PhaseResult SimRuntime::run_ksync(TrainingState& state, const PhaseConfig& cfg,
                                  const std::vector<int>& active,
                                  const StragglerSchedule& stragglers, const StopPredicate& stop,
                                  bool batch_mode) {
  // Dutta et al. [11]: each round, every worker computes on the same
  // parameter snapshot; the PS aggregates the first K contributions and
  // cancels the rest.  K-sync takes one gradient per worker (the K fastest
  // *workers*); K-batch-sync lets fast workers contribute several minibatches
  // (the first K *batches*).  K = n reduces to BSP exactly.
  PhaseResult result;
  const std::size_t n = active.size();
  const std::size_t k = effective_k(cfg, n);
  const std::size_t p = state.ps.num_params();
  const std::size_t b = cfg.per_worker_batch;
  const std::size_t d = train_.feature_dim();

  std::vector<float> snapshot(p);
  std::vector<float> grad(p);
  std::vector<float> grad_sum(p);
  Tensor batch_x({b, d});
  std::vector<int> batch_y;
  std::vector<std::uint32_t> indices;

  // One round's contribution: (arrival time within round, worker).
  struct Arrival {
    VTime at;
    VTime duration;
    int worker;
  };

  // Compression shrinks the push leg (same calibrated-ratio model as the
  // BSP/async paths).
  const double ksync_push_bytes =
      cfg.compressor ? cluster_.spec().payload_bytes *
                           static_cast<double>(cfg.compressor->wire_bytes(p)) /
                           (static_cast<double>(p) * sizeof(float))
                     : cluster_.spec().payload_bytes;
  auto draw_task = [&](int w, VTime now) {
    const double slow = stragglers.slow_factor(w, now);
    auto& wrng = state.worker_rngs[static_cast<std::size_t>(w)];
    return cluster_.transfer_time(slow) + cluster_.compute_time(wrng, slow, b) +
           cluster_.transfer_time(slow, ksync_push_bytes);
  };

  const VTime phase_start = state.clock;
  while (result.steps_done < cfg.step_budget) {
    state.ps.pull(snapshot);
    std::fill(grad_sum.begin(), grad_sum.end(), 0.0f);
    double loss_sum = 0.0;
    VTime round = VTime::zero();

    std::vector<Arrival> winners;
    winners.reserve(k);
    if (!batch_mode) {
      // Draw one task per worker (in worker order, to keep RNG consumption
      // identical to BSP); keep the K earliest completions.
      std::vector<Arrival> tasks;
      tasks.reserve(n);
      for (int w : active) {
        const VTime t = draw_task(w, state.clock);
        tasks.push_back({t, t, w});
      }
      std::sort(tasks.begin(), tasks.end(), [](const Arrival& a, const Arrival& c) {
        if (a.at != c.at) return a.at < c.at;
        return a.worker < c.worker;
      });
      winners.assign(tasks.begin(), tasks.begin() + static_cast<std::ptrdiff_t>(k));
      round = winners.back().at;
      result.cancelled_tasks += static_cast<std::int64_t>(n - k);
    } else {
      // Fast workers pipeline batches until K total arrive.  Simulate each
      // worker's sequence of completions with a simple time-ordered merge.
      std::vector<VTime> next(n);      // next completion, relative to round start
      std::vector<VTime> started(n);   // when that task started
      for (std::size_t i = 0; i < n; ++i) {
        const int w = active[i];
        next[i] = draw_task(w, state.clock);
        started[i] = VTime::zero();
      }
      for (std::size_t c = 0; c < k; ++c) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < n; ++i)
          if (next[i] < next[best]) best = i;
        const int w = active[best];
        winners.push_back({next[best], next[best] - started[best], w});
        round = next[best];
        started[best] = next[best];
        next[best] = next[best] + draw_task(w, state.clock + next[best]);
      }
      // The n in-flight tasks at the cutoff are abandoned part-way; they are
      // not counted in cancelled_tasks (which counts *completed* waste).
    }

    // Compute the K winning gradients against the shared snapshot, in a
    // deterministic order (worker index, then arrival) for reproducibility.
    std::sort(winners.begin(), winners.end(), [](const Arrival& a, const Arrival& c) {
      if (a.worker != c.worker) return a.worker < c.worker;
      return a.at < c.at;
    });
    for (const Arrival& a : winners) {
      auto& sampler = state.samplers[static_cast<std::size_t>(a.worker)];
      sampler.set_batch_size(b);
      sampler.next_batch(indices);
      train_.gather(indices, batch_x, batch_y);
      loss_sum += grad_model_.gradient_at(snapshot, batch_x, batch_y, grad);
      if (cfg.compressor)
        cfg.compressor->transform(a.worker, grad,
                                  state.worker_rngs[static_cast<std::size_t>(a.worker)]);
      result.push_bytes += static_cast<std::int64_t>(std::llround(ksync_push_bytes));
      ops::add_inplace(std::span<float>(grad_sum), std::span<const float>(grad));

      TaskObservation tobs;
      tobs.worker = a.worker;
      tobs.completed_at = state.clock + a.at;
      tobs.task_duration = a.duration;
      tobs.images = b;
      sink_.on_task(tobs);
    }
    ops::scale_inplace(std::span<float>(grad_sum), 1.0f / static_cast<float>(k));

    const double mult = cfg.lr_multiplier_schedule ? cfg.lr_multiplier_schedule(state.global_step)
                                                   : cfg.lr_multiplier;
    const double lr = cfg.lr_schedule->at(state.global_step) * mult;
    state.ps.optimizer().set_momentum(momentum_at(cfg, result.steps_done));
    state.ps.apply(grad_sum, lr);

    state.clock += round + cluster_.sync_overhead(k);
    state.global_step += static_cast<std::int64_t>(k);
    result.steps_done += static_cast<std::int64_t>(k);

    const double mean_loss = loss_sum / static_cast<double>(k);
    UpdateObservation uobs;
    uobs.global_step = state.global_step;
    uobs.time = state.clock;
    uobs.train_loss = mean_loss;
    uobs.staleness = 0;
    uobs.protocol = batch_mode ? Protocol::kKBatchSync : Protocol::kKSync;
    sink_.on_update(uobs);

    if (!std::isfinite(mean_loss) || mean_loss > cfg.divergence_loss_threshold ||
        !state.ps.healthy()) {
      result.end = PhaseEnd::kDiverged;
      result.elapsed = state.clock - phase_start;
      return result;
    }

    maybe_eval(state, cfg);

    if (stop && stop(state.clock, state.global_step)) {
      result.end = PhaseEnd::kStopRequested;
      result.trigger_step = state.global_step;
      result.elapsed = state.clock - phase_start;
      return result;
    }
  }
  result.end = PhaseEnd::kBudgetExhausted;
  result.elapsed = state.clock - phase_start;
  return result;
}

PhaseResult SimRuntime::run_kasync(TrainingState& state, const PhaseConfig& cfg,
                                   const std::vector<int>& active,
                                   const StragglerSchedule& stragglers,
                                   const StopPredicate& stop, bool distinct_workers) {
  // Dutta et al. [11]: workers run at their own pace (no cancellations); the
  // PS buffers incoming gradients and applies their average once K have
  // arrived (K-async: from K distinct workers; K-batch-async: any K).
  // Buffered gradients carry the staleness of their own pull.  K = 1
  // reduces to ASP-with-one-element-buffer (identical updates, one extra
  // copy).
  PhaseResult result;
  const std::size_t n = active.size();
  const std::size_t k = effective_k(cfg, n);
  const std::size_t p = state.ps.num_params();
  const std::size_t b = cfg.per_worker_batch;
  const std::size_t d = train_.feature_dim();

  struct InFlight {
    std::vector<float> snapshot;
    std::vector<std::uint32_t> indices;
    std::vector<std::int64_t> pull_versions;  // per-shard versions at pull
    VTime pull_started;
  };
  std::vector<InFlight> inflight(state.samplers.size());

  struct Buffered {
    std::vector<float> grad;
    std::int64_t staleness = 0;
    double loss = 0.0;
    int worker = 0;
  };
  std::vector<Buffered> buffer;
  buffer.reserve(k + n);

  EventQueue queue;
  Tensor batch_x({b, d});
  std::vector<int> batch_y;
  std::vector<float> grad(p);
  std::vector<float> grad_sum(p);

  const VTime phase_start = state.clock;
  std::int64_t total_staleness = 0;
  std::int64_t contributions = 0;

  auto start_pull = [&](int w, VTime now) {
    const double slow = stragglers.slow_factor(w, now);
    queue.schedule(now + cluster_.transfer_time(slow), kPullDone, w);
  };

  const VTime cycle = cluster_.mean_cycle(b);
  for (int w : active) {
    inflight[static_cast<std::size_t>(w)].snapshot.resize(p);
    const double offset = state.worker_rngs[static_cast<std::size_t>(w)].uniform();
    start_pull(w, state.clock + cycle.scaled(offset));
  }

  bool done = false;
  while (!queue.empty() && !done) {
    const SimEvent ev = queue.pop();
    const int w = ev.worker;
    auto& fl = inflight[static_cast<std::size_t>(w)];

    if (ev.kind == kPullDone) {
      state.ps.pull(fl.snapshot);
      state.ps.shard_versions(fl.pull_versions);
      fl.pull_started = ev.time;
      auto& sampler = state.samplers[static_cast<std::size_t>(w)];
      sampler.set_batch_size(b);
      sampler.next_batch(fl.indices);
      const double slow = stragglers.slow_factor(w, ev.time);
      const double push_bytes =
          cfg.compressor
              ? cluster_.spec().payload_bytes *
                    static_cast<double>(cfg.compressor->wire_bytes(p)) /
                    (static_cast<double>(p) * sizeof(float))
              : cluster_.spec().payload_bytes;
      const VTime busy =
          cluster_.compute_time(state.worker_rngs[static_cast<std::size_t>(w)], slow, b) +
          cluster_.transfer_time(slow, push_bytes);
      queue.schedule(ev.time + busy, kPushArrive, w);
      continue;
    }

    // kPushArrive: buffer this gradient; maybe trigger an aggregated update.
    train_.gather(fl.indices, batch_x, batch_y);
    Buffered item;
    item.loss = grad_model_.gradient_at(fl.snapshot, batch_x, batch_y, grad);
    if (cfg.compressor)
      cfg.compressor->transform(w, grad, state.worker_rngs[static_cast<std::size_t>(w)]);
    item.grad.assign(grad.begin(), grad.end());
    item.staleness = state.ps.staleness_since(fl.pull_versions);
    item.worker = w;
    buffer.push_back(std::move(item));
    result.push_bytes += static_cast<std::int64_t>(std::llround(
        cfg.compressor ? cluster_.spec().payload_bytes *
                             static_cast<double>(cfg.compressor->wire_bytes(p)) /
                             (static_cast<double>(p) * sizeof(float))
                       : cluster_.spec().payload_bytes));

    TaskObservation tobs;
    tobs.worker = w;
    tobs.completed_at = ev.time;
    tobs.task_duration = ev.time - fl.pull_started;
    tobs.images = b;
    sink_.on_task(tobs);

    // The worker immediately begins its next cycle (no cancellation, no
    // parking in this family).
    start_pull(w, ev.time);

    bool trigger = false;
    if (distinct_workers) {
      std::set<int> distinct;
      for (const auto& it : buffer) distinct.insert(it.worker);
      trigger = distinct.size() >= k;
    } else {
      trigger = buffer.size() >= k;
    }
    if (!trigger) continue;

    // Aggregate the buffered gradients into one update.
    std::fill(grad_sum.begin(), grad_sum.end(), 0.0f);
    double loss_sum = 0.0;
    std::int64_t stale_sum = 0;
    for (const auto& it : buffer) {
      ops::add_inplace(std::span<float>(grad_sum), std::span<const float>(it.grad));
      loss_sum += it.loss;
      stale_sum += it.staleness;
    }
    const auto m = static_cast<double>(buffer.size());
    ops::scale_inplace(std::span<float>(grad_sum), static_cast<float>(1.0 / m));

    const double mult = cfg.lr_multiplier_schedule ? cfg.lr_multiplier_schedule(state.global_step)
                                                   : cfg.lr_multiplier;
    const double lr = cfg.lr_schedule->at(state.global_step) * mult;
    state.ps.optimizer().set_momentum(momentum_at(cfg, result.steps_done));
    state.ps.apply(grad_sum, lr);
    state.clock = ev.time + cluster_.spec().async_apply;
    state.global_step += static_cast<std::int64_t>(buffer.size());
    result.steps_done += static_cast<std::int64_t>(buffer.size());
    total_staleness += stale_sum;
    contributions += static_cast<std::int64_t>(buffer.size());

    UpdateObservation uobs;
    uobs.global_step = state.global_step;
    uobs.time = state.clock;
    uobs.train_loss = loss_sum / m;
    uobs.staleness =
        static_cast<std::int64_t>(stale_sum / static_cast<std::int64_t>(buffer.size()));
    uobs.protocol = distinct_workers ? Protocol::kKAsync : Protocol::kKBatchAsync;
    sink_.on_update(uobs);
    buffer.clear();

    if (!std::isfinite(uobs.train_loss) || uobs.train_loss > cfg.divergence_loss_threshold ||
        !state.ps.healthy()) {
      result.end = PhaseEnd::kDiverged;
      queue.clear();
      done = true;
      break;
    }

    maybe_eval(state, cfg);

    if (stop && stop(state.clock, state.global_step)) {
      result.end = PhaseEnd::kStopRequested;
      result.trigger_step = state.global_step;
      queue.clear();  // abandoned in-flight work, as in a checkpoint-restart
      done = true;
      break;
    }

    if (result.steps_done >= cfg.step_budget) {
      queue.clear();
      done = true;
      break;
    }
  }

  if (contributions > 0)
    result.mean_staleness =
        static_cast<double>(total_staleness) / static_cast<double>(contributions);
  result.elapsed = state.clock - phase_start;
  return result;
}

}  // namespace ss
