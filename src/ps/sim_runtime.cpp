// The runtime layer of the simulator: real math driven by the DES core.
//
// `run_phase` is a thin driver — it maps the protocol onto one of two
// generic schedulers from `sim/des_engine.h` and supplies the math:
//
//  * synchronous family (BSP, K-sync, K-batch-sync): `plan_round` plans each
//    round's admitted contributions; this layer computes the winning
//    gradients against the shared snapshot and applies their average.  BSP
//    is exactly K-sync with K = n.
//  * event-driven family (ASP, SSP, DSSP, K-async, K-batch-async): a
//    `DesEngine` runs each worker's pull→compute→push lifecycle under the
//    protocol's admission rules; an `EventDrivenProcess` here does the
//    pull/compute/apply work when the engine's events fire.
#include "ps/sim_runtime.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <set>

#include "common/error.h"
#include "tensor/ops.h"

namespace ss {

namespace {

/// Wire bytes of one gradient push.  Compression shrinks the push in
/// proportion to the codec's wire ratio, applied to the *calibrated* payload
/// model rather than the raw parameter count, so setups whose payload_bytes
/// stands in for a larger real model keep a faithful relative speedup.
double push_wire_bytes(const ClusterModel& cluster, const PhaseConfig& cfg, std::size_t p) {
  return cfg.compressor ? cluster.spec().payload_bytes *
                              static_cast<double>(cfg.compressor->wire_bytes(p)) /
                              (static_cast<double>(p) * sizeof(float))
                        : cluster.spec().payload_bytes;
}

/// Effective K for the K-variant protocols: defaults to the active cluster
/// size, clamped to [1, n].
std::size_t effective_k(const PhaseConfig& cfg, std::size_t n) {
  const std::size_t k = cfg.k_param > 0 ? static_cast<std::size_t>(cfg.k_param) : n;
  return std::clamp<std::size_t>(k, 1, n);
}

/// The WorkerProcess behind every event-driven protocol.  The engine decides
/// *when* a pull or push fires; this class performs the work:
///
///  * apply-each mode (ASP/SSP/DSSP): each arriving push is applied
///    immediately; staleness is measured against the per-shard versions
///    captured at pull time.  Admission (parking, DSSP credit) lives in the
///    engine.
///  * buffered mode (K-async/K-batch-async, Dutta et al. [11]): pushes are
///    buffered and their average applied once K have arrived (K-async: from
///    K distinct workers; K-batch-async: any K).  Buffered gradients carry
///    the staleness of their own pull.
class EventDrivenProcess final : public WorkerProcess {
 public:
  EventDrivenProcess(const ClusterModel& cluster, Model& grad_model, const Dataset& train,
                     MetricsSink& sink, TrainingState& state, const PhaseConfig& cfg,
                     const StragglerSchedule& stragglers, const StopPredicate& stop,
                     PhaseResult& result, bool buffered, bool distinct_workers, std::size_t k,
                     std::function<void()> eval_hook,
                     std::function<double(std::int64_t)> momentum_hook)
      : cluster_(cluster),
        grad_model_(grad_model),
        train_(train),
        sink_(sink),
        state_(state),
        cfg_(cfg),
        stragglers_(stragglers),
        stop_(stop),
        result_(result),
        buffered_(buffered),
        distinct_(distinct_workers),
        k_(k),
        p_(state.ps.num_params()),
        b_(cfg.per_worker_batch),
        push_bytes_(push_wire_bytes(cluster, cfg, state.ps.num_params())),
        eval_(std::move(eval_hook)),
        momentum_(std::move(momentum_hook)),
        inflight_(state.samplers.size()),
        batch_x_({cfg.per_worker_batch, train.feature_dim()}),
        grad_(state.ps.num_params()),
        grad_sum_(state.ps.num_params()) {
    buffer_.reserve(k_ + state.samplers.size());
  }

  /// Pre-size a worker's pull buffer before its kickoff pull is scheduled.
  void prepare_worker(int worker) {
    inflight_[static_cast<std::size_t>(worker)].snapshot.resize(p_);
  }

  [[nodiscard]] std::int64_t total_staleness() const noexcept { return total_staleness_; }
  /// Staleness samples accumulated (applied updates in apply-each mode,
  /// buffered contributions in buffered mode).
  [[nodiscard]] std::int64_t contributions() const noexcept { return contributions_; }

  VTime pull_latency(int worker, VTime now) override {
    return cluster_.transfer_time(stragglers_.slow_factor(worker, now));
  }

  VTime on_pull_done(int worker, VTime time) override {
    // Snapshot the *current* parameters: any pushes applied while this pull
    // was in flight are visible, later ones are not.  The per-shard version
    // vector is what staleness is measured against at push time.
    auto& fl = inflight_[static_cast<std::size_t>(worker)];
    state_.ps.pull(fl.snapshot);
    state_.ps.shard_versions(fl.pull_versions);
    fl.pull_started = time;
    auto& sampler = state_.samplers[static_cast<std::size_t>(worker)];
    sampler.set_batch_size(b_);
    sampler.next_batch(fl.indices);
    const double slow = stragglers_.slow_factor(worker, time);
    return cluster_.compute_time(state_.worker_rngs[static_cast<std::size_t>(worker)], slow,
                                 b_) +
           cluster_.transfer_time(slow, push_bytes_);
  }

  PushOutcome on_push_arrive(int worker, VTime time) override {
    return buffered_ ? push_buffered(worker, time) : push_apply_each(worker, time);
  }

 private:
  struct InFlight {
    std::vector<float> snapshot;              // params pulled
    std::vector<std::uint32_t> indices;       // minibatch drawn at pull time
    std::vector<std::int64_t> pull_versions;  // per-shard versions at pull
    VTime pull_started;
  };

  struct Buffered {
    std::vector<float> grad;
    std::int64_t staleness = 0;
    double loss = 0.0;
    int worker = 0;
  };

  /// Apply-each: the gradient (computed against the pulled snapshot) is
  /// applied immediately.  Compressed pushes travel as a CompressedPush:
  /// sparse (top-k) pushes apply per shard — touching and versioning only
  /// the shards owning kept coordinates, exactly like the threaded runtime's
  /// per-shard fast path — while dense quantized pushes apply like an
  /// uncompressed gradient.
  PushOutcome push_apply_each(int worker, VTime time) {
    auto& fl = inflight_[static_cast<std::size_t>(worker)];
    train_.gather(fl.indices, batch_x_, batch_y_);
    const double loss = grad_model_.gradient_at(fl.snapshot, batch_x_, batch_y_, grad_);
    std::optional<CompressedPush> push;
    if (cfg_.compressor) {
      push = cfg_.compressor->encode(worker, grad_,
                                     state_.worker_rngs[static_cast<std::size_t>(worker)]);
      result_.push_bytes += static_cast<std::int64_t>(std::llround(push_bytes_));
    } else {
      result_.push_bytes += static_cast<std::int64_t>(cluster_.spec().payload_bytes);
    }
    const std::int64_t staleness =
        push && push->sparse() ? state_.ps.staleness_since(fl.pull_versions, push->indices)
                               : state_.ps.staleness_since(fl.pull_versions);

    const double mult = cfg_.lr_multiplier_schedule
                            ? cfg_.lr_multiplier_schedule(state_.global_step)
                            : cfg_.lr_multiplier;
    const double lr = cfg_.lr_schedule->at(state_.global_step) * mult;
    state_.ps.optimizer().set_momentum(momentum_(result_.steps_done));
    if (push && push->sparse())
      state_.ps.apply_sparse(push->indices, push->values, lr);
    else if (push)
      state_.ps.apply(push->values, lr);
    else
      state_.ps.apply(grad_, lr);
    state_.clock = time + cluster_.spec().async_apply;
    state_.global_step += 1;
    result_.steps_done += 1;
    total_staleness_ += staleness;
    ++contributions_;

    TaskObservation tobs;
    tobs.worker = worker;
    tobs.completed_at = state_.clock;
    tobs.task_duration = state_.clock - fl.pull_started;
    tobs.images = b_;
    sink_.on_task(tobs);

    UpdateObservation uobs;
    uobs.global_step = state_.global_step;
    uobs.time = state_.clock;
    uobs.train_loss = loss;
    uobs.staleness = staleness;
    uobs.protocol = cfg_.protocol;
    sink_.on_update(uobs);

    PushOutcome out;
    out.resume_at = state_.clock;
    if (!std::isfinite(loss) || loss > cfg_.divergence_loss_threshold || !state_.ps.healthy()) {
      result_.end = PhaseEnd::kDiverged;
      out.stop = true;
      return out;
    }
    eval_();
    if (stop_ && stop_(state_.clock, state_.global_step)) {
      result_.end = PhaseEnd::kStopRequested;
      result_.trigger_step = state_.global_step;
      out.stop = true;
      return out;
    }
    if (result_.steps_done >= cfg_.step_budget) out.stop = true;  // drain
    return out;
  }

  /// Buffered: stash this gradient; once the trigger holds, apply the
  /// buffer's average as one update.
  PushOutcome push_buffered(int worker, VTime time) {
    auto& fl = inflight_[static_cast<std::size_t>(worker)];
    train_.gather(fl.indices, batch_x_, batch_y_);
    Buffered item;
    item.loss = grad_model_.gradient_at(fl.snapshot, batch_x_, batch_y_, grad_);
    if (cfg_.compressor)
      cfg_.compressor->transform(worker, grad_,
                                 state_.worker_rngs[static_cast<std::size_t>(worker)]);
    item.grad.assign(grad_.begin(), grad_.end());
    item.staleness = state_.ps.staleness_since(fl.pull_versions);
    item.worker = worker;
    buffer_.push_back(std::move(item));
    result_.push_bytes += static_cast<std::int64_t>(std::llround(push_bytes_));

    TaskObservation tobs;
    tobs.worker = worker;
    tobs.completed_at = time;
    tobs.task_duration = time - fl.pull_started;
    tobs.images = b_;
    sink_.on_task(tobs);

    PushOutcome out;
    out.resume_at = time;  // the worker's next cycle starts immediately
    bool trigger = false;
    if (distinct_) {
      std::set<int> distinct;
      for (const auto& it : buffer_) distinct.insert(it.worker);
      trigger = distinct.size() >= k_;
    } else {
      trigger = buffer_.size() >= k_;
    }
    if (!trigger) return out;

    // Aggregate the buffered gradients into one update.
    std::fill(grad_sum_.begin(), grad_sum_.end(), 0.0f);
    double loss_sum = 0.0;
    std::int64_t stale_sum = 0;
    for (const auto& it : buffer_) {
      ops::add_inplace(std::span<float>(grad_sum_), std::span<const float>(it.grad));
      loss_sum += it.loss;
      stale_sum += it.staleness;
    }
    const auto m = static_cast<double>(buffer_.size());
    ops::scale_inplace(std::span<float>(grad_sum_), static_cast<float>(1.0 / m));

    const double mult = cfg_.lr_multiplier_schedule
                            ? cfg_.lr_multiplier_schedule(state_.global_step)
                            : cfg_.lr_multiplier;
    const double lr = cfg_.lr_schedule->at(state_.global_step) * mult;
    state_.ps.optimizer().set_momentum(momentum_(result_.steps_done));
    state_.ps.apply(grad_sum_, lr);
    state_.clock = time + cluster_.spec().async_apply;
    state_.global_step += static_cast<std::int64_t>(buffer_.size());
    result_.steps_done += static_cast<std::int64_t>(buffer_.size());
    total_staleness_ += stale_sum;
    contributions_ += static_cast<std::int64_t>(buffer_.size());

    UpdateObservation uobs;
    uobs.global_step = state_.global_step;
    uobs.time = state_.clock;
    uobs.train_loss = loss_sum / m;
    uobs.staleness =
        static_cast<std::int64_t>(stale_sum / static_cast<std::int64_t>(buffer_.size()));
    uobs.protocol = cfg_.protocol;
    sink_.on_update(uobs);
    buffer_.clear();

    if (!std::isfinite(uobs.train_loss) || uobs.train_loss > cfg_.divergence_loss_threshold ||
        !state_.ps.healthy()) {
      result_.end = PhaseEnd::kDiverged;
      out.stop = true;
      return out;
    }
    eval_();
    if (stop_ && stop_(state_.clock, state_.global_step)) {
      result_.end = PhaseEnd::kStopRequested;
      result_.trigger_step = state_.global_step;
      out.stop = true;
      return out;
    }
    if (result_.steps_done >= cfg_.step_budget) out.stop = true;  // drain
    return out;
  }

  const ClusterModel& cluster_;
  Model& grad_model_;
  const Dataset& train_;
  MetricsSink& sink_;
  TrainingState& state_;
  const PhaseConfig& cfg_;
  const StragglerSchedule& stragglers_;
  const StopPredicate& stop_;
  PhaseResult& result_;
  const bool buffered_;
  const bool distinct_;
  const std::size_t k_;
  const std::size_t p_;
  const std::size_t b_;
  const double push_bytes_;
  std::function<void()> eval_;
  std::function<double(std::int64_t)> momentum_;

  std::vector<InFlight> inflight_;
  std::vector<Buffered> buffer_;
  Tensor batch_x_;
  std::vector<int> batch_y_;
  std::vector<float> grad_;
  std::vector<float> grad_sum_;
  std::int64_t total_staleness_ = 0;
  std::int64_t contributions_ = 0;
};

}  // namespace

SimRuntime::SimRuntime(ClusterModel cluster, Model& grad_model, Model& eval_model,
                       const Dataset& train, const Dataset& eval_set, MetricsSink& sink)
    : cluster_(std::move(cluster)),
      grad_model_(grad_model),
      eval_model_(eval_model),
      train_(train),
      eval_set_(eval_set),
      sink_(sink) {}

double SimRuntime::momentum_at(const PhaseConfig& cfg, std::int64_t steps_into_phase) const {
  if (cfg.momentum_schedule) return cfg.momentum_schedule(steps_into_phase);
  return cfg.momentum;
}

void SimRuntime::maybe_eval(TrainingState& state, const PhaseConfig& cfg) {
  if (cfg.eval_interval <= 0) return;
  const std::int64_t bucket = state.global_step / cfg.eval_interval;
  if (bucket == last_eval_bucket_) return;
  last_eval_bucket_ = bucket;
  if (!state.ps.healthy()) return;  // divergence handled by the caller
  eval_model_.set_params(state.ps.params());
  const double acc = eval_model_.evaluate_accuracy(eval_set_);
  sink_.on_eval(state.global_step, state.clock, acc);
}

PhaseResult SimRuntime::run_phase(TrainingState& state, const PhaseConfig& cfg,
                                  const std::vector<int>& active_workers,
                                  const StragglerSchedule& stragglers,
                                  const StopPredicate& stop) {
  if (cfg.lr_schedule == nullptr) throw ConfigError("PhaseConfig: lr_schedule is required");
  if (active_workers.empty()) throw ConfigError("run_phase: no active workers");
  for (int w : active_workers)
    if (w < 0 || static_cast<std::size_t>(w) >= state.samplers.size())
      throw ConfigError("run_phase: active worker index out of range");
  // Reset the eval bucket so a fresh phase re-evaluates on its first boundary.
  last_eval_bucket_ = state.global_step / std::max<std::int64_t>(cfg.eval_interval, 1);

  switch (cfg.protocol) {
    case Protocol::kBsp:
      return run_rounds(state, cfg, active_workers, stragglers, stop, /*pipelined=*/false);
    case Protocol::kKSync:
      return run_rounds(state, cfg, active_workers, stragglers, stop, /*pipelined=*/false);
    case Protocol::kKBatchSync:
      return run_rounds(state, cfg, active_workers, stragglers, stop, /*pipelined=*/true);
    case Protocol::kAsp:
      return run_event_driven(state, cfg, active_workers, stragglers, stop,
                              AdmissionRules::track_only(), /*buffered=*/false,
                              /*distinct_workers=*/false);
    case Protocol::kSsp:
      return run_event_driven(state, cfg, active_workers, stragglers, stop,
                              AdmissionRules::bounded_by(cfg.ssp_staleness_bound),
                              /*buffered=*/false, /*distinct_workers=*/false);
    case Protocol::kDssp:
      // DSSP (Zhao et al.): the effective bound floats in [s, s + r].
      return run_event_driven(
          state, cfg, active_workers, stragglers, stop,
          AdmissionRules::dynamic_bound(cfg.ssp_staleness_bound, cfg.dssp_staleness_upper),
          /*buffered=*/false, /*distinct_workers=*/false);
    case Protocol::kKAsync:
      return run_event_driven(state, cfg, active_workers, stragglers, stop,
                              AdmissionRules::free_running(), /*buffered=*/true,
                              /*distinct_workers=*/true);
    case Protocol::kKBatchAsync:
      return run_event_driven(state, cfg, active_workers, stragglers, stop,
                              AdmissionRules::free_running(), /*buffered=*/true,
                              /*distinct_workers=*/false);
  }
  throw ConfigError("run_phase: unknown protocol");
}

PhaseResult SimRuntime::run_rounds(TrainingState& state, const PhaseConfig& cfg,
                                   const std::vector<int>& active,
                                   const StragglerSchedule& stragglers, const StopPredicate& stop,
                                   bool pipelined) {
  // Dutta et al. [11]: each round, every worker computes on the same
  // parameter snapshot; the PS aggregates the first K contributions and
  // cancels the rest.  K-sync takes one gradient per worker (the K fastest
  // *workers*); K-batch-sync lets fast workers contribute several minibatches
  // (the first K *batches*).  BSP is K = n: the barrier waits for the
  // slowest, the aggregated update is a true batch-(n*b) gradient step (TF
  // SyncReplicasOptimizer semantics).
  PhaseResult result;
  const std::size_t n = active.size();
  const std::size_t k = cfg.protocol == Protocol::kBsp ? n : effective_k(cfg, n);
  const std::size_t p = state.ps.num_params();
  const std::size_t b = cfg.per_worker_batch;
  const std::size_t d = train_.feature_dim();

  std::vector<float> snapshot(p);
  std::vector<float> grad(p);
  std::vector<float> grad_sum(p);
  Tensor batch_x({b, d});
  std::vector<int> batch_y;
  std::vector<std::uint32_t> indices;

  const double push_bytes = push_wire_bytes(cluster_, cfg, p);
  const TaskDraw draw = [&](int w, VTime offset) {
    const double slow = stragglers.slow_factor(w, state.clock + offset);
    auto& wrng = state.worker_rngs[static_cast<std::size_t>(w)];
    // pull (full parameters) + compute + push (possibly compressed).
    return cluster_.transfer_time(slow) + cluster_.compute_time(wrng, slow, b) +
           cluster_.transfer_time(slow, push_bytes);
  };

  const VTime phase_start = state.clock;
  while (result.steps_done < cfg.step_budget) {
    state.ps.pull(snapshot);
    std::fill(grad_sum.begin(), grad_sum.end(), 0.0f);
    double loss_sum = 0.0;

    const RoundPlan plan = plan_round(active, k, pipelined, draw);
    result.cancelled_tasks += plan.cancelled;

    // Compute the K winning gradients against the shared snapshot, in the
    // plan's deterministic order (worker index, then arrival).
    for (const RoundArrival& a : plan.winners) {
      auto& sampler = state.samplers[static_cast<std::size_t>(a.worker)];
      sampler.set_batch_size(b);
      sampler.next_batch(indices);
      train_.gather(indices, batch_x, batch_y);
      loss_sum += grad_model_.gradient_at(snapshot, batch_x, batch_y, grad);
      if (cfg.compressor)
        cfg.compressor->transform(a.worker, grad,
                                  state.worker_rngs[static_cast<std::size_t>(a.worker)]);
      result.push_bytes += static_cast<std::int64_t>(std::llround(push_bytes));
      ops::add_inplace(std::span<float>(grad_sum), std::span<const float>(grad));

      TaskObservation tobs;
      tobs.worker = a.worker;
      tobs.completed_at = state.clock + a.at;
      tobs.task_duration = a.duration;
      tobs.images = b;
      sink_.on_task(tobs);
    }
    // Average the gradients: the aggregated update is a true batch-(k*b)
    // gradient step.
    ops::scale_inplace(std::span<float>(grad_sum), 1.0f / static_cast<float>(k));

    const double mult = cfg.lr_multiplier_schedule ? cfg.lr_multiplier_schedule(state.global_step)
                                                   : cfg.lr_multiplier;
    const double lr = cfg.lr_schedule->at(state.global_step) * mult;
    state.ps.optimizer().set_momentum(momentum_at(cfg, result.steps_done));
    state.ps.apply(grad_sum, lr);

    state.clock += plan.round_end + cluster_.sync_overhead(k);
    state.global_step += static_cast<std::int64_t>(k);
    result.steps_done += static_cast<std::int64_t>(k);

    const double mean_loss = loss_sum / static_cast<double>(k);
    UpdateObservation uobs;
    uobs.global_step = state.global_step;
    uobs.time = state.clock;
    uobs.train_loss = mean_loss;
    uobs.staleness = 0;
    uobs.protocol = cfg.protocol;
    sink_.on_update(uobs);

    if (!std::isfinite(mean_loss) || mean_loss > cfg.divergence_loss_threshold ||
        !state.ps.healthy()) {
      result.end = PhaseEnd::kDiverged;
      result.elapsed = state.clock - phase_start;
      return result;
    }

    maybe_eval(state, cfg);

    if (stop && stop(state.clock, state.global_step)) {
      result.end = PhaseEnd::kStopRequested;
      result.trigger_step = state.global_step;
      result.elapsed = state.clock - phase_start;
      return result;
    }
  }
  result.end = PhaseEnd::kBudgetExhausted;
  result.elapsed = state.clock - phase_start;
  return result;
}

PhaseResult SimRuntime::run_event_driven(TrainingState& state, const PhaseConfig& cfg,
                                         const std::vector<int>& active,
                                         const StragglerSchedule& stragglers,
                                         const StopPredicate& stop, AdmissionRules rules,
                                         bool buffered, bool distinct_workers) {
  PhaseResult result;
  const std::size_t b = cfg.per_worker_batch;
  const std::size_t k = effective_k(cfg, active.size());
  const VTime phase_start = state.clock;

  EventDrivenProcess process(
      cluster_, grad_model_, train_, sink_, state, cfg, stragglers, stop, result, buffered,
      distinct_workers, k, [this, &state, &cfg] { maybe_eval(state, cfg); },
      [this, &cfg](std::int64_t steps) { return momentum_at(cfg, steps); });
  DesEngine engine(process, active, rules);

  // Kick off: every active worker starts pulling at phase start, staggered
  // over up to one cycle.  Async task launches are never synchronized in a
  // real PS deployment (session setup times vary per node); starting all
  // workers in lockstep would push n near-identical gradients as a wave,
  // an artifact that destabilizes training right after a protocol switch.
  const VTime cycle = cluster_.mean_cycle(b);
  for (int w : active) {
    process.prepare_worker(w);
    const double offset = state.worker_rngs[static_cast<std::size_t>(w)].uniform();
    engine.schedule_pull(w, state.clock + cycle.scaled(offset));
  }
  engine.run();

  result.max_clock_gap = engine.max_clock_gap();
  if (process.contributions() > 0)
    result.mean_staleness = static_cast<double>(process.total_staleness()) /
                            static_cast<double>(process.contributions());
  result.elapsed = state.clock - phase_start;
  return result;
}

}  // namespace ss
