// Sharded parameter-server state: the authoritative model parameters plus
// the (server-side) momentum optimizer, partitioned into contiguous shards.
//
// The paper collocates PS shards with workers.  Earlier revisions kept one
// logical vector behind the ParameterServer API and let the cluster model
// price sharding as a pure timing effect; that serializes every ASP push on
// one lock and caps the real-throughput ceiling.  This class makes the shard
// layer real:
//
//  * The vector is split into `num_shards` contiguous ranges.  Each shard
//    owns a version counter and a velocity slice (one flat SgdMomentum holds
//    the storage; `apply_range` updates disjoint slices).
//  * Full-vector `apply`/`pull`/`set_params` keep the historical semantics —
//    one logical update advances every shard — so all three runtimes work
//    against the same API, while staleness accounting can read per-shard
//    versions (`shard_versions` at pull, `staleness_since` at push).
//  * Per-shard primitives (`pull_shard`, `apply_shard`) let the threaded
//    runtime guard each shard with its own mutex instead of one global lock.
//  * `set_parallel_apply` attaches a persistent worker pool; full-vector
//    apply/pull then fan shards across threads.  Shards are disjoint, so the
//    parallel path is bit-for-bit identical to the serial one.
//
// Version counts let the runtimes measure gradient staleness exactly:
// staleness of an update = max over shards of
// (shard version at push - shard version at pull).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/error.h"
#include "nn/checkpoint.h"
#include "nn/optimizer.h"
#include "ps/shard_pool.h"

namespace ss {

class ShardedParameterServer {
 public:
  /// Contiguous half-open index range [begin, end) owned by one shard.
  struct ShardRange {
    std::size_t begin = 0;
    std::size_t end = 0;
    [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
  };

  /// `num_shards` is clamped to [1, num_params]; the first
  /// `num_params % num_shards` shards are one element larger.
  ShardedParameterServer(std::vector<float> init_params, double momentum,
                         std::size_t num_shards = 1);

  ShardedParameterServer(ShardedParameterServer&&) = default;
  ShardedParameterServer& operator=(ShardedParameterServer&&) = default;

  [[nodiscard]] std::size_t num_params() const noexcept { return params_.size(); }
  [[nodiscard]] std::size_t num_shards() const noexcept { return shard_versions_.size(); }
  [[nodiscard]] ShardRange shard_range(std::size_t shard) const;

  /// Shard owning parameter `param_index` (the inverse of `shard_range`).
  [[nodiscard]] std::size_t shard_of(std::size_t param_index) const;

  /// Invoke `fn(shard, begin, end)` for each maximal run of `indices` owned
  /// by one shard, where [begin, end) are positions into `indices`.  The
  /// index list must be ascending (throws ConfigError at run boundaries
  /// otherwise; in-run order is validated by `apply_sparse_shard`); shards
  /// owning no index are skipped.  Runs are visited in ascending shard
  /// order — the property the threaded facade's per-shard locking relies on
  /// for deadlock freedom.  Shared by the sparse apply, sparse staleness,
  /// and the threaded `push_compressed` walk so the segmentation logic
  /// cannot drift between them.
  template <typename Fn>
  void for_each_shard_segment(std::span<const std::uint32_t> indices, Fn&& fn) const {
    std::size_t pos = 0;
    while (pos < indices.size()) {
      if (pos > 0 && indices[pos] <= indices[pos - 1])
        throw ConfigError("ShardedParameterServer: sparse indices must be ascending");
      const std::size_t s = shard_of(indices[pos]);
      const ShardRange r = shard_range(s);
      std::size_t end = pos + 1;
      while (end < indices.size() && indices[end] < r.end) ++end;
      fn(s, pos, end);
      pos = end;
    }
  }

  /// Authoritative parameters (what a worker pull copies).
  [[nodiscard]] std::span<const float> params() const noexcept { return params_; }

  /// Copy parameters into `out` (a worker pull).  Uses the parallel pool
  /// when one is attached.
  void pull(std::span<float> out) const;

  /// Overwrite the authoritative parameters in place (used by runtimes that
  /// train external replicas, e.g. the group-based protocol, to fold their
  /// result back).  Counts as one version advance on every shard.
  void set_params(std::span<const float> params);

  /// Number of complete logical updates applied so far: the minimum shard
  /// version (all shards agree except transiently, mid-push, under the
  /// threaded runtime's per-shard locking).
  [[nodiscard]] std::int64_t version() const noexcept;

  /// Apply one full gradient with the given learning rate (an ASP push, or
  /// the already-aggregated BSP gradient).  Every shard's version advances
  /// by one.  Uses the parallel pool when one is attached.
  void apply(std::span<const float> grad, double lr);

  /// Apply a sparse push: `values[i]` lands on coordinate `indices[i]`
  /// (strictly ascending, in range — throws ConfigError otherwise).  Only
  /// the shards owning kept coordinates are touched, and only their versions
  /// advance; coordinates outside the index set keep their parameter and
  /// velocity bits exactly (sparse momentum — see SgdMomentum::apply_sparse).
  /// An empty index set is a no-op.  For a single push from equal state, a
  /// listed coordinate's arithmetic is bit-identical to a dense `apply` of
  /// the scattered vector, independent of the shard layout.
  void apply_sparse(std::span<const std::uint32_t> indices, std::span<const float> values,
                    double lr);

  // --- Per-shard primitives (the threaded runtime's lock granularity).
  // `out`/`grad` are full-length vectors; only the shard's range is touched.

  void pull_shard(std::size_t shard, std::span<float> out) const;
  void apply_shard(std::size_t shard, std::span<const float> grad, double lr);
  /// Sparse apply restricted to one shard: every index must fall inside the
  /// shard's range (absolute coordinates).  Advances only this shard's
  /// version.  This is the granularity at which the threaded runtime locks.
  void apply_sparse_shard(std::size_t shard, std::span<const std::uint32_t> indices,
                          std::span<const float> values, double lr);
  [[nodiscard]] std::int64_t shard_version(std::size_t shard) const;

  /// Snapshot every shard version into `out` (resized to num_shards).
  void shard_versions(std::vector<std::int64_t>& out) const;

  /// Staleness of a push whose pull observed `pulled`: the largest number of
  /// updates any shard absorbed since.  Equals the historical global
  /// version-delta when every update is a full-vector apply.
  [[nodiscard]] std::int64_t staleness_since(std::span<const std::int64_t> pulled) const;

  /// Staleness of a *sparse* push: the max is taken only over the shards
  /// owning the kept coordinates — the shards this push actually reads and
  /// writes (`indices` strictly ascending, as for apply_sparse).
  [[nodiscard]] std::int64_t staleness_since(std::span<const std::int64_t> pulled,
                                             std::span<const std::uint32_t> indices) const;

  /// Attach a worker pool of `extra_threads` additional threads; subsequent
  /// full-vector apply/pull calls fan shards across extra_threads + 1
  /// workers.  Pass 0 to detach and return to the serial path.  The result
  /// of every operation is bit-identical either way.
  void set_parallel_apply(std::size_t extra_threads);
  [[nodiscard]] bool parallel_apply_enabled() const noexcept { return pool_ != nullptr; }

  [[nodiscard]] SgdMomentum& optimizer() noexcept { return opt_; }
  [[nodiscard]] const SgdMomentum& optimizer() const noexcept { return opt_; }

  /// Checkpoint the PS state, including the shard layout and per-shard
  /// versions (used by the protocol-switch mechanism).
  [[nodiscard]] Checkpoint make_checkpoint(std::int64_t global_step) const;

  /// Restore parameters + optimizer velocity from a checkpoint.  The
  /// checkpoint's shard layout must match this server's (flat single-shard
  /// checkpoints restore into any layout).  Versions are not rolled back:
  /// they only ever move forward, so staleness accounting stays monotone
  /// across a checkpoint-restart.
  void restore(const Checkpoint& ckpt);

  // --- Per-shard snapshot hooks (the elastic subsystem's granularity).
  // The threaded facade wraps each call in that shard's mutex, so the
  // AsyncSnapshotter can walk the server copy-on-read — one consistent
  // (params, velocity, version) slice at a time — without ever holding more
  // than one shard lock.  `params_out`/`velocity_out` are full-length
  // vectors; only the shard's range is touched (like `pull_shard`).

  void snapshot_shard_state(std::size_t shard, std::span<float> params_out,
                            std::span<float> velocity_out, std::int64_t& version_out) const;
  /// Overwrite one shard's parameter + velocity slices from full-length
  /// vectors.  Version counters are never rolled back (same contract as
  /// `restore`).
  void restore_shard_state(std::size_t shard, std::span<const float> params,
                           std::span<const float> velocity);

  /// True if all parameters are finite (divergence guard).
  [[nodiscard]] bool healthy() const noexcept;

 private:
  std::vector<float> params_;
  SgdMomentum opt_;
  std::vector<std::int64_t> shard_versions_;
  std::unique_ptr<ShardApplyPool> pool_;
};

}  // namespace ss
