// Parameter-server state: the authoritative model parameters plus the
// (server-side) momentum optimizer.
//
// The paper collocates PS shards with workers; since sharding only affects
// the *timing* model (handled by ClusterModel), the state itself is kept as
// one logical vector.  Version counts let the runtime measure gradient
// staleness exactly: staleness of an update = version_at_push - version_at_pull.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/checkpoint.h"
#include "nn/optimizer.h"

namespace ss {

class ParameterServer {
 public:
  ParameterServer(std::vector<float> init_params, double momentum);

  [[nodiscard]] std::size_t num_params() const noexcept { return params_.size(); }

  /// Authoritative parameters (what a worker pull copies).
  [[nodiscard]] std::span<const float> params() const noexcept { return params_; }

  /// Copy parameters into `out` (a worker pull).
  void pull(std::span<float> out) const;

  /// Overwrite the authoritative parameters in place (used by runtimes that
  /// train external replicas, e.g. the group-based protocol, to fold their
  /// result back).  Counts as one version advance.
  void set_params(std::span<const float> params);

  /// Number of updates applied so far.
  [[nodiscard]] std::int64_t version() const noexcept { return version_; }

  /// Apply one gradient with the given learning rate (an ASP push, or the
  /// already-aggregated BSP gradient).
  void apply(std::span<const float> grad, double lr);

  [[nodiscard]] SgdMomentum& optimizer() noexcept { return opt_; }
  [[nodiscard]] const SgdMomentum& optimizer() const noexcept { return opt_; }

  /// Checkpoint the PS state (used by the protocol-switch mechanism).
  [[nodiscard]] Checkpoint make_checkpoint(std::int64_t global_step) const;

  /// Restore parameters + optimizer velocity from a checkpoint.
  void restore(const Checkpoint& ckpt);

  /// True if all parameters are finite (divergence guard).
  [[nodiscard]] bool healthy() const noexcept;

 private:
  std::vector<float> params_;
  SgdMomentum opt_;
  std::int64_t version_ = 0;
};

}  // namespace ss
