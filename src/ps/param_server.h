// Parameter-server state: compatibility name for the sharded implementation.
//
// The PS used to keep one logical vector behind one lock, on the theory that
// sharding (the paper collocates PS shards with workers) only affects the
// *timing* model.  That was true for the simulator but capped the real
// runtimes: every ASP push serialized on a single mutex.  The state is now
// genuinely sharded — see sharded_param_server.h for the layout, per-shard
// version counters, and the parallel apply/pull path.  `ParameterServer`
// remains the name the runtimes and tests program against; a single-shard
// server (the default) behaves exactly like the historical implementation.
#pragma once

#include "ps/sharded_param_server.h"

namespace ss {

using ParameterServer = ShardedParameterServer;

}  // namespace ss
