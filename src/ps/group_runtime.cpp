#include "ps/group_runtime.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/error.h"
#include "sim/event_queue.h"
#include "tensor/ops.h"

namespace ss {

namespace {

constexpr float kSignificanceEps = 1e-8f;

/// One group's replica + local optimizer + broadcast bookkeeping.
struct Group {
  std::vector<int> workers;
  std::vector<float> params;
  SgdMomentum opt;
  /// Parameter values as of this group's last outgoing broadcast: the
  /// significance filter compares against these.
  std::vector<float> shadow;

  Group(std::vector<int> workers_in, std::vector<float> params_in, double momentum)
      : workers(std::move(workers_in)),
        params(std::move(params_in)),
        opt(params.size(), momentum),
        shadow(params) {}
};

/// Sparse delta in flight between groups.
struct Broadcast {
  std::size_t from = 0;
  std::vector<std::uint32_t> index;
  std::vector<float> delta;
};

double replica_divergence(const std::vector<Group>& groups) {
  if (groups.size() < 2) return 0.0;
  const std::size_t p = groups[0].params.size();
  double norm_sum = 0.0;
  for (const auto& g : groups) {
    double sq = 0.0;
    for (const float v : g.params) sq += static_cast<double>(v) * v;
    norm_sum += std::sqrt(sq);
  }
  const double mean_norm = norm_sum / static_cast<double>(groups.size());
  if (mean_norm == 0.0) return 0.0;

  double dist_sum = 0.0;
  int pairs = 0;
  for (std::size_t a = 0; a < groups.size(); ++a) {
    for (std::size_t b = a + 1; b < groups.size(); ++b) {
      double sq = 0.0;
      for (std::size_t i = 0; i < p; ++i) {
        const double d = static_cast<double>(groups[a].params[i]) - groups[b].params[i];
        sq += d * d;
      }
      dist_sum += std::sqrt(sq);
      ++pairs;
    }
  }
  return dist_sum / pairs / mean_norm;
}

}  // namespace

GroupRuntime::GroupRuntime(ClusterModel cluster, Model& grad_model, Model& eval_model,
                           const Dataset& train, const Dataset& eval_set, MetricsSink& sink)
    : cluster_(std::move(cluster)),
      grad_model_(grad_model),
      eval_model_(eval_model),
      train_(train),
      eval_set_(eval_set),
      sink_(sink) {}

GroupPhaseResult GroupRuntime::run(TrainingState& state, const GroupConfig& cfg,
                                   const StragglerSchedule& stragglers) {
  if (cfg.lr_schedule == nullptr) throw ConfigError("GroupConfig: lr_schedule is required");
  if (cfg.num_groups < 1) throw ConfigError("GroupConfig: need at least one group");
  if (cfg.significance_threshold < 0.0)
    throw ConfigError("GroupConfig: significance_threshold must be >= 0");
  const std::size_t n = state.samplers.size();
  if (cfg.num_groups > n) throw ConfigError("GroupConfig: more groups than workers");

  GroupPhaseResult result;
  const std::size_t p = state.ps.num_params();
  const std::size_t b = cfg.per_worker_batch;
  const std::size_t d = train_.feature_dim();

  // Partition workers round-robin into groups.
  std::vector<Group> groups;
  groups.reserve(cfg.num_groups);
  {
    std::vector<std::vector<int>> members(cfg.num_groups);
    for (std::size_t w = 0; w < n; ++w)
      members[w % cfg.num_groups].push_back(static_cast<int>(w));
    std::vector<float> init(p);
    state.ps.pull(init);
    for (auto& m : members) groups.emplace_back(std::move(m), init, cfg.momentum);
  }

  EventQueue queue;
  std::unordered_map<std::uint64_t, Broadcast> in_flight;
  Tensor batch_x({b, d});
  std::vector<int> batch_y;
  std::vector<float> grad(p);
  std::vector<float> grad_sum(p);
  std::vector<std::uint32_t> indices;

  const VTime phase_start = state.clock;
  double significant_fraction_sum = 0.0;
  double divergence_sum = 0.0;
  std::int64_t rounds = 0;
  bool done = false;

  // A group's round duration: the slowest member's task plus the
  // intra-group barrier overhead.
  auto round_time = [&](const Group& g, VTime now) {
    VTime max_task = VTime::zero();
    for (const int w : g.workers) {
      const double slow = stragglers.slow_factor(w, now);
      max_task = std::max(
          max_task, cluster_.task_time(state.worker_rngs[static_cast<std::size_t>(w)], slow, b));
    }
    return max_task + cluster_.sync_overhead(g.workers.size());
  };

  // Kick off round 1 in every group.
  for (std::size_t g = 0; g < groups.size(); ++g)
    queue.schedule(state.clock + round_time(groups[g], state.clock), SimEventKind::kRoundDone,
                   static_cast<int>(g));

  while (!queue.empty() && !done) {
    const SimEvent ev = queue.pop();

    if (ev.kind == SimEventKind::kBroadcastArrive) {
      // Merge a remote delta into this group's replica (Gaia mirrors apply
      // remote updates without blocking local compute).
      auto it = in_flight.find(ev.seq);
      // The queue assigns fresh seq numbers per schedule, but a broadcast to
      // G-1 targets is scheduled G-1 times with distinct seqs; each maps to
      // the shared payload through the side table populated at send time.
      if (it == in_flight.end()) continue;  // cleared phase-end leftovers
      const Broadcast& bc = it->second;
      auto& g = groups[static_cast<std::size_t>(ev.worker)];
      for (std::size_t i = 0; i < bc.index.size(); ++i) {
        g.params[bc.index[i]] += bc.delta[i];
        // The shadow absorbs remote deltas too: a group only ever broadcasts
        // its *locally generated* changes, never echoes of its peers'.
        g.shadow[bc.index[i]] += bc.delta[i];
      }
      in_flight.erase(it);
      continue;
    }

    // SimEventKind::kRoundDone: one synchronous round inside group ev.worker.
    auto& g = groups[static_cast<std::size_t>(ev.worker)];
    const auto k = static_cast<double>(g.workers.size());
    std::fill(grad_sum.begin(), grad_sum.end(), 0.0f);
    double loss_sum = 0.0;
    for (const int w : g.workers) {
      auto& sampler = state.samplers[static_cast<std::size_t>(w)];
      sampler.set_batch_size(b);
      sampler.next_batch(indices);
      train_.gather(indices, batch_x, batch_y);
      loss_sum += grad_model_.gradient_at(g.params, batch_x, batch_y, grad);
      ops::add_inplace(std::span<float>(grad_sum), std::span<const float>(grad));

      TaskObservation tobs;
      tobs.worker = w;
      tobs.completed_at = ev.time;
      tobs.task_duration = ev.time - state.clock;  // approximate: round span
      tobs.images = b;
      sink_.on_task(tobs);
    }
    ops::scale_inplace(std::span<float>(grad_sum), static_cast<float>(1.0 / k));

    const double lr = cfg.lr_schedule->at(state.global_step) * cfg.lr_multiplier;
    g.opt.set_momentum(cfg.momentum);
    g.opt.apply(g.params, grad_sum, lr);

    state.clock = std::max(state.clock, ev.time);
    state.global_step += static_cast<std::int64_t>(g.workers.size());
    result.steps_done += static_cast<std::int64_t>(g.workers.size());
    ++rounds;
    divergence_sum += replica_divergence(groups);

    const double mean_loss = loss_sum / k;
    UpdateObservation uobs;
    uobs.global_step = state.global_step;
    uobs.time = ev.time;
    uobs.train_loss = mean_loss;
    uobs.staleness = 0;  // intra-group updates are synchronous
    uobs.protocol = Protocol::kBsp;
    sink_.on_update(uobs);

    if (!std::isfinite(mean_loss) || mean_loss > cfg.divergence_loss_threshold) {
      result.end = PhaseEnd::kDiverged;
      queue.clear();
      break;
    }

    // --- Significance filter: broadcast coordinates that moved enough
    // since this group's last broadcast.
    if (groups.size() > 1) {
      Broadcast bc;
      bc.from = static_cast<std::size_t>(ev.worker);
      for (std::size_t i = 0; i < p; ++i) {
        const float delta = g.params[i] - g.shadow[i];
        if (std::fabs(delta) >
            cfg.significance_threshold * (std::fabs(g.shadow[i]) + kSignificanceEps)) {
          bc.index.push_back(static_cast<std::uint32_t>(i));
          bc.delta.push_back(delta);
          g.shadow[i] = g.params[i];
        }
      }
      significant_fraction_sum += static_cast<double>(bc.index.size()) / static_cast<double>(p);
      if (!bc.index.empty()) {
        ++result.broadcasts;
        const double sparse_bytes = static_cast<double>(bc.index.size()) *
                                    (sizeof(std::uint32_t) + sizeof(float)) /
                                    (static_cast<double>(p) * sizeof(float)) *
                                    cluster_.spec().payload_bytes;
        // Schedule one arrival per remote group; each arrival's sequence
        // number keys its own copy of the payload in the side table.  A
        // broadcast is a direct group-to-group link transfer — it never
        // touches the PS, so PS-shard striping must not price it.
        std::vector<std::uint64_t> seqs;
        for (std::size_t tgt = 0; tgt < groups.size(); ++tgt) {
          if (tgt == bc.from) continue;
          seqs.push_back(
              queue.schedule(ev.time + cluster_.link_transfer_time(1.0, sparse_bytes),
                             SimEventKind::kBroadcastArrive, static_cast<int>(tgt)));
        }
        for (const std::uint64_t s : seqs) in_flight.emplace(s, bc);
      }
    }

    // Evaluate on the across-group average at eval boundaries.
    if (cfg.eval_interval > 0 && state.global_step / cfg.eval_interval !=
                                     (state.global_step - static_cast<std::int64_t>(k)) /
                                         cfg.eval_interval) {
      std::vector<float> avg(p, 0.0f);
      for (const auto& grp : groups)
        ops::add_inplace(std::span<float>(avg), std::span<const float>(grp.params));
      ops::scale_inplace(std::span<float>(avg), 1.0f / static_cast<float>(groups.size()));
      eval_model_.set_params(avg);
      sink_.on_eval(state.global_step, ev.time, eval_model_.evaluate_accuracy(eval_set_));
    }

    if (result.steps_done >= cfg.step_budget) {
      queue.clear();
      done = true;
      break;
    }

    // Next round for this group.
    queue.schedule(ev.time + round_time(g, ev.time), SimEventKind::kRoundDone, ev.worker);
  }

  // Fold the across-group average back into the logical PS so evaluation,
  // checkpointing and any subsequent phase see the trained model.
  {
    std::vector<float> avg(p, 0.0f);
    for (const auto& grp : groups)
      ops::add_inplace(std::span<float>(avg), std::span<const float>(grp.params));
    ops::scale_inplace(std::span<float>(avg), 1.0f / static_cast<float>(groups.size()));
    state.ps.set_params(avg);
  }

  if (rounds > 0) {
    result.mean_significant_fraction = significant_fraction_sum / static_cast<double>(rounds);
    result.mean_replica_divergence = divergence_sum / static_cast<double>(rounds);
  }
  result.elapsed = state.clock - phase_start;
  return result;
}

}  // namespace ss
