#include "data/dataset.h"

#include <cstring>

#include "common/error.h"

namespace ss {

Dataset::Dataset(Tensor features, std::vector<int> labels, int num_classes)
    : features_(std::move(features)), labels_(std::move(labels)), num_classes_(num_classes) {
  if (features_.rank() != 2)
    throw ShapeError("Dataset: features must be rank-2 (N, D)");
  if (features_.dim(0) != labels_.size())
    throw ShapeError("Dataset: features rows != labels size");
  if (num_classes_ <= 0) throw ConfigError("Dataset: num_classes must be positive");
  for (int y : labels_)
    if (y < 0 || y >= num_classes_) throw ConfigError("Dataset: label out of range");
}

void Dataset::gather(std::span<const std::uint32_t> indices, Tensor& batch_x,
                     std::vector<int>& batch_y) const {
  const std::size_t d = feature_dim();
  if (batch_x.rank() != 2 || batch_x.dim(0) != indices.size() || batch_x.dim(1) != d)
    throw ShapeError("Dataset::gather: batch tensor shape mismatch");
  batch_y.resize(indices.size());
  const float* src = features_.data();
  float* dst = batch_x.data();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t row = indices[i];
    if (row >= size()) throw ShapeError("Dataset::gather: index out of range");
    std::memcpy(dst + i * d, src + row * d, d * sizeof(float));
    batch_y[i] = labels_[row];
  }
}

Dataset Dataset::head(std::size_t n) const {
  n = std::min(n, size());
  const std::size_t d = feature_dim();
  Tensor f({n, d});
  std::memcpy(f.data(), features_.data(), n * d * sizeof(float));
  std::vector<int> y(labels_.begin(), labels_.begin() + static_cast<std::ptrdiff_t>(n));
  return Dataset(std::move(f), std::move(y), num_classes_);
}

}  // namespace ss
