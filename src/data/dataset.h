// In-memory labelled dataset with train/test splits, plus worker shards.
//
// Everything trains from RAM: features are one row-major (N, feature_dim)
// tensor, labels a parallel int vector. Worker-level partitioning lives in
// data/batcher.h (make_shards + MinibatchSampler); this file supplies the
// storage those shards index into. `gather` materializes a minibatch from
// sampled row indices, and `head` gives the profiler a cheap fixed
// subsample for the periodic accuracy probes the paper's timing policy
// keys off.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace ss {

/// A labelled dataset: features are (num_examples, feature_dim) row-major,
/// labels are ints in [0, num_classes).
class Dataset {
 public:
  Dataset() = default;
  Dataset(Tensor features, std::vector<int> labels, int num_classes);

  [[nodiscard]] std::size_t size() const noexcept { return labels_.size(); }
  [[nodiscard]] std::size_t feature_dim() const noexcept {
    return features_.rank() == 2 ? features_.dim(1) : 0;
  }
  [[nodiscard]] int num_classes() const noexcept { return num_classes_; }

  [[nodiscard]] const Tensor& features() const noexcept { return features_; }
  [[nodiscard]] std::span<const int> labels() const noexcept { return labels_; }

  /// Copy rows `indices` into a (indices.size(), feature_dim) batch tensor
  /// and label vector.
  void gather(std::span<const std::uint32_t> indices, Tensor& batch_x,
              std::vector<int>& batch_y) const;

  /// First `n` examples as a contiguous view-copy (used for fast periodic
  /// test evaluation on a subsample).
  [[nodiscard]] Dataset head(std::size_t n) const;

 private:
  Tensor features_;
  std::vector<int> labels_;
  int num_classes_ = 0;
};

/// Train/test pair.
struct DataSplit {
  Dataset train;
  Dataset test;
};

}  // namespace ss
