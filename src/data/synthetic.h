// Synthetic CIFAR-like dataset generator.
//
// The paper trains ResNet32/CIFAR-10 and ResNet50/CIFAR-100.  We do not have
// those datasets or GPUs, and none of the paper's claims depend on vision
// specifics — they depend on optimization behaviour (see DESIGN.md §2).  This
// generator produces a classification task with the properties that matter:
//
//  * classes are unions of several Gaussian "modes" (class manifolds), so a
//    linear model underfits and an MLP improves over training, giving the
//    characteristic accuracy-vs-steps learning curve;
//  * label noise sets a test-accuracy ceiling below 100%, so BSP can reach a
//    lower *training* loss than hybrid schedules while both plateau at the
//    same *test* accuracy (the paper's Remark A.2 phenomenon);
//  * a "100-class" variant with more classes/modes and lower separation
//    mimics CIFAR-100's harder, longer training.
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace ss {

/// Parameters of the synthetic class-manifold task.
struct SyntheticSpec {
  int num_classes = 10;
  std::size_t feature_dim = 64;
  std::size_t train_size = 16384;
  std::size_t test_size = 4096;
  int modes_per_class = 3;        ///< Gaussian modes forming each class manifold.
  double class_separation = 2.2;  ///< Distance scale between mode centers.
  double within_stddev = 1.0;     ///< Sample spread around a mode center.
  double label_noise = 0.06;      ///< Probability a train label is resampled uniformly.
  std::uint64_t seed = 1234;

  /// CIFAR-10-like default (used by experiment setups 1 and 3).
  [[nodiscard]] static SyntheticSpec cifar10_like();
  /// CIFAR-100-like: 100 classes, lower separation, larger model needed
  /// (experiment setup 2).
  [[nodiscard]] static SyntheticSpec cifar100_like();
};

/// Generate a reproducible train/test split from the spec.  Test labels are
/// noise-free (noise only corrupts training labels), matching common
/// synthetic-benchmark practice: the ceiling comes from class overlap plus
/// training noise.
DataSplit make_synthetic(const SyntheticSpec& spec);

}  // namespace ss
