#include "data/batcher.h"

#include <numeric>

#include "common/error.h"

namespace ss {

std::vector<ShardSpec> make_shards(std::size_t dataset_size, std::size_t num_workers) {
  if (num_workers == 0) throw ConfigError("make_shards: num_workers must be > 0");
  if (dataset_size < num_workers)
    throw ConfigError("make_shards: dataset smaller than worker count");
  std::vector<ShardSpec> shards(num_workers);
  const std::size_t base = dataset_size / num_workers;
  const std::size_t extra = dataset_size % num_workers;
  std::uint32_t cursor = 0;
  for (std::size_t w = 0; w < num_workers; ++w) {
    const std::size_t len = base + (w < extra ? 1 : 0);
    shards[w].begin = cursor;
    shards[w].end = cursor + static_cast<std::uint32_t>(len);
    cursor = shards[w].end;
  }
  return shards;
}

MinibatchSampler::MinibatchSampler(ShardSpec shard, std::size_t batch_size, Rng rng)
    : shard_(shard), batch_size_(batch_size), rng_(rng) {
  if (shard_.size() == 0) throw ConfigError("MinibatchSampler: empty shard");
  if (batch_size_ == 0) throw ConfigError("MinibatchSampler: batch_size must be > 0");
  order_.resize(shard_.size());
  std::iota(order_.begin(), order_.end(), shard_.begin);
  reshuffle();
}

void MinibatchSampler::reshuffle() {
  rng_.shuffle(order_);
  cursor_ = 0;
}

void MinibatchSampler::next_batch(std::vector<std::uint32_t>& out) {
  out.clear();
  out.reserve(batch_size_);
  while (out.size() < batch_size_) {
    if (cursor_ >= order_.size()) {
      ++epochs_;
      reshuffle();
    }
    out.push_back(order_[cursor_++]);
  }
}

void MinibatchSampler::set_batch_size(std::size_t batch_size) {
  if (batch_size == 0) throw ConfigError("MinibatchSampler: batch_size must be > 0");
  batch_size_ = batch_size;
}

}  // namespace ss
