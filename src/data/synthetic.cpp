#include "data/synthetic.h"

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace ss {

SyntheticSpec SyntheticSpec::cifar10_like() {
  SyntheticSpec s;
  s.num_classes = 10;
  s.feature_dim = 64;
  s.train_size = 16384;
  s.test_size = 4096;
  s.modes_per_class = 3;
  s.class_separation = 0.55;
  s.within_stddev = 1.0;
  s.label_noise = 0.06;
  s.seed = 1234;
  return s;
}

SyntheticSpec SyntheticSpec::cifar100_like() {
  SyntheticSpec s;
  s.num_classes = 100;
  s.feature_dim = 96;
  s.train_size = 16384;
  s.test_size = 4096;
  s.modes_per_class = 2;
  s.class_separation = 0.80;
  s.within_stddev = 1.0;
  s.label_noise = 0.04;
  s.seed = 5678;
  return s;
}

namespace {

struct ModeCenters {
  // centers[class][mode] is a feature_dim vector.
  std::vector<std::vector<std::vector<float>>> centers;
};

ModeCenters make_centers(const SyntheticSpec& spec, Rng& rng) {
  ModeCenters mc;
  mc.centers.resize(static_cast<std::size_t>(spec.num_classes));
  for (auto& modes : mc.centers) {
    modes.resize(static_cast<std::size_t>(spec.modes_per_class));
    for (auto& center : modes) {
      center.resize(spec.feature_dim);
      for (auto& v : center)
        v = static_cast<float>(rng.gaussian(0.0, spec.class_separation));
    }
  }
  return mc;
}

Dataset sample_set(const SyntheticSpec& spec, const ModeCenters& mc, std::size_t n,
                   double label_noise, Rng& rng) {
  Tensor features({n, spec.feature_dim});
  std::vector<int> labels(n);
  float* pf = features.data();
  // Standardize to ~unit per-dimension variance, as input pipelines do for
  // image data (per-channel normalization in the paper's Tensor2Tensor
  // preprocessing).  Keeps gradient scales sane for the unnormalized MLP.
  const float inv_scale = static_cast<float>(
      1.0 / std::sqrt(spec.class_separation * spec.class_separation +
                      spec.within_stddev * spec.within_stddev));
  for (std::size_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(spec.num_classes)));
    const auto& modes = mc.centers[static_cast<std::size_t>(cls)];
    const auto& center = modes[rng.uniform_index(modes.size())];
    float* row = pf + i * spec.feature_dim;
    for (std::size_t d = 0; d < spec.feature_dim; ++d)
      row[d] = (center[d] + static_cast<float>(rng.gaussian(0.0, spec.within_stddev))) *
               inv_scale;
    int y = cls;
    if (label_noise > 0.0 && rng.bernoulli(label_noise))
      y = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(spec.num_classes)));
    labels[i] = y;
  }
  return Dataset(std::move(features), std::move(labels), spec.num_classes);
}

}  // namespace

DataSplit make_synthetic(const SyntheticSpec& spec) {
  if (spec.num_classes < 2) throw ConfigError("make_synthetic: need >= 2 classes");
  if (spec.feature_dim == 0) throw ConfigError("make_synthetic: feature_dim must be > 0");
  if (spec.modes_per_class < 1) throw ConfigError("make_synthetic: modes_per_class >= 1");
  if (spec.label_noise < 0.0 || spec.label_noise >= 1.0)
    throw ConfigError("make_synthetic: label_noise in [0, 1)");

  Rng rng(spec.seed);
  const ModeCenters mc = make_centers(spec, rng);
  Rng train_rng = rng.fork(1);
  Rng test_rng = rng.fork(2);
  DataSplit split;
  split.train = sample_set(spec, mc, spec.train_size, spec.label_noise, train_rng);
  split.test = sample_set(spec, mc, spec.test_size, /*label_noise=*/0.0, test_rng);
  return split;
}

}  // namespace ss
