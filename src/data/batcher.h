// Data-parallel sharding and minibatch sampling.
//
// Matches the paper's data-parallel setup (§II-A): training data are
// partitioned across workers; each worker iterates minibatches from its own
// shard with its own shuffle stream.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace ss {

/// Contiguous partition of example indices assigned to one worker.
struct ShardSpec {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;  ///< exclusive
  [[nodiscard]] std::uint32_t size() const noexcept { return end - begin; }
};

/// Partition [0, dataset_size) into `num_workers` near-equal shards.
std::vector<ShardSpec> make_shards(std::size_t dataset_size, std::size_t num_workers);

/// Per-worker minibatch sampler: shuffles its shard each epoch and yields
/// fixed-size index batches.  Deterministic given the rng stream.
class MinibatchSampler {
 public:
  MinibatchSampler(ShardSpec shard, std::size_t batch_size, Rng rng);

  /// Fill `out` with the next `batch_size` indices (wrapping over epochs).
  void next_batch(std::vector<std::uint32_t>& out);

  [[nodiscard]] std::size_t batch_size() const noexcept { return batch_size_; }
  [[nodiscard]] std::size_t epochs_completed() const noexcept { return epochs_; }

  /// Change the batch size mid-training (configuration policy may resize
  /// batches when the protocol switches).
  void set_batch_size(std::size_t batch_size);

 private:
  void reshuffle();

  ShardSpec shard_;
  std::size_t batch_size_;
  Rng rng_;
  std::vector<std::uint32_t> order_;
  std::size_t cursor_ = 0;
  std::size_t epochs_ = 0;
};

}  // namespace ss
