#include "nn/zoo.h"

#include "common/error.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pool.h"
#include "nn/residual.h"

namespace ss {

std::string arch_name(ModelArch arch) {
  switch (arch) {
    case ModelArch::kResNet32Lite:
      return "resnet32_lite";
    case ModelArch::kResNet50Lite:
      return "resnet50_lite";
    case ModelArch::kLinear:
      return "linear";
    case ModelArch::kConvNetTiny:
      return "convnet_tiny";
    case ModelArch::kResNet32BnLite:
      return "resnet32_bn_lite";
    case ModelArch::kResNet50BnLite:
      return "resnet50_bn_lite";
  }
  return "unknown";
}

Model make_model(ModelArch arch, std::size_t input_dim, int num_classes, Rng& rng) {
  Model m;
  const auto classes = static_cast<std::size_t>(num_classes);
  switch (arch) {
    case ModelArch::kResNet32Lite:
      m.add(std::make_unique<Dense>(input_dim, 96, rng))
          .add(std::make_unique<ReLU>())
          .add(std::make_unique<Dense>(96, 64, rng))
          .add(std::make_unique<ReLU>())
          .add(std::make_unique<Dense>(64, classes, rng));
      break;
    case ModelArch::kResNet50Lite:
      m.add(std::make_unique<Dense>(input_dim, 96, rng))
          .add(std::make_unique<ReLU>())
          .add(std::make_unique<Dense>(96, 96, rng))
          .add(std::make_unique<ReLU>())
          .add(std::make_unique<Dense>(96, 96, rng))
          .add(std::make_unique<ReLU>())
          .add(std::make_unique<Dense>(96, classes, rng));
      break;
    case ModelArch::kLinear:
      m.add(std::make_unique<Dense>(input_dim, classes, rng));
      break;
    case ModelArch::kConvNetTiny: {
      if (input_dim != 3 * 16 * 16)
        throw ConfigError("convnet_tiny expects 3x16x16 = 768 input features");
      auto conv1 = std::make_unique<Conv2D>(3, 16, 16, 8, 3, 3, 1, rng);
      auto pool1 = std::make_unique<MaxPool2x2>(8, 16, 16);
      const std::size_t f1 = pool1->out_features();  // 8*8*8
      m.add(std::move(conv1)).add(std::make_unique<ReLU>()).add(std::move(pool1));
      m.add(std::make_unique<Dense>(f1, 64, rng))
          .add(std::make_unique<ReLU>())
          .add(std::make_unique<Dense>(64, classes, rng));
      break;
    }
    case ModelArch::kResNet32BnLite:
      // The 32-lite stem with one BN residual block: the skip connection and
      // normalization give the smoother landscape of the real ResNet32.
      m.add(std::make_unique<Dense>(input_dim, 96, rng))
          .add(std::make_unique<BatchNorm>(96))
          .add(std::make_unique<ReLU>())
          .add(std::make_unique<ResidualBlock>(96, rng))
          .add(std::make_unique<Dense>(96, 64, rng))
          .add(std::make_unique<ReLU>())
          .add(std::make_unique<Dense>(64, classes, rng));
      break;
    case ModelArch::kResNet50BnLite:
      m.add(std::make_unique<Dense>(input_dim, 96, rng))
          .add(std::make_unique<BatchNorm>(96))
          .add(std::make_unique<ReLU>())
          .add(std::make_unique<ResidualBlock>(96, rng))
          .add(std::make_unique<ResidualBlock>(96, rng))
          .add(std::make_unique<Dense>(96, classes, rng));
      break;
  }
  return m;
}

std::size_t model_flops_proxy(ModelArch arch, std::size_t input_dim, int num_classes) {
  // 3x the forward MAC count approximates fwd+bwd cost.
  const auto classes = static_cast<std::size_t>(num_classes);
  std::size_t macs = 0;
  switch (arch) {
    case ModelArch::kResNet32Lite:
      macs = input_dim * 96 + 96 * 64 + 64 * classes;
      break;
    case ModelArch::kResNet50Lite:
      macs = input_dim * 96 + 96 * 96 + 96 * 96 + 96 * classes;
      break;
    case ModelArch::kLinear:
      macs = input_dim * classes;
      break;
    case ModelArch::kConvNetTiny:
      macs = 8 * 3 * 3 * 3 * 16 * 16 + (8 * 8 * 8) * 64 + 64 * classes;
      break;
    case ModelArch::kResNet32BnLite:
      macs = input_dim * 96 + 2 * 96 * 96 + 96 * 64 + 64 * classes;
      break;
    case ModelArch::kResNet50BnLite:
      macs = input_dim * 96 + 4 * 96 * 96 + 96 * classes;
      break;
  }
  return 3 * macs;
}

}  // namespace ss
