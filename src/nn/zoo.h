// Model zoo: the scaled-down stand-ins for the paper's workloads.
//
// "resnet32_lite" and "resnet50_lite" are MLPs sized so that (a) they train
// in seconds on one CPU core, (b) the 50-variant has meaningfully more
// parameters/compute than the 32-variant (the paper's ResNet50 has longer
// per-batch time), and (c) both underfit a linear baseline, so the accuracy-
// vs-steps curve has the CIFAR-like shape the policies key off.
// "convnet_tiny" exercises the Conv2D/MaxPool path for image-shaped inputs.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "nn/model.h"

namespace ss {

/// Workload identifiers used across benches and EXPERIMENTS.md.
enum class ModelArch {
  kResNet32Lite,   ///< stands in for ResNet32 (setups 1, 3)
  kResNet50Lite,   ///< stands in for ResNet50 (setup 2)
  kLinear,         ///< linear softmax baseline (tests)
  kConvNetTiny,    ///< small CNN over (C,H,W) inputs (example / tests)
  kResNet32BnLite, ///< ResNet32 stand-in with BatchNorm + residual skip
  kResNet50BnLite, ///< ResNet50 stand-in with BatchNorm + residual skips
};

/// Name used in reports.
std::string arch_name(ModelArch arch);

/// Build a model for `input_dim` features and `num_classes` outputs.
/// For kConvNetTiny, input must be 3x16x16 = 768 features.
Model make_model(ModelArch arch, std::size_t input_dim, int num_classes, Rng& rng);

/// Per-step compute cost proxy (multiply-accumulate count for a batch-1
/// forward+backward).  The cluster simulator turns this into virtual
/// compute time.
std::size_t model_flops_proxy(ModelArch arch, std::size_t input_dim, int num_classes);

}  // namespace ss
