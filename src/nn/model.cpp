#include "nn/model.h"

#include <sstream>

#include "common/error.h"

namespace ss {

Model& Model::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

std::size_t Model::num_params() const {
  std::size_t n = 0;
  for (const auto& l : layers_)
    for (const Tensor* t : const_cast<Layer&>(*l).params()) n += t->numel();
  return n;
}

void Model::get_params(std::span<float> out) const {
  std::size_t off = 0;
  for (const auto& l : layers_) {
    for (const Tensor* t : const_cast<Layer&>(*l).params()) {
      if (off + t->numel() > out.size()) throw ShapeError("get_params: buffer too small");
      std::copy(t->data(), t->data() + t->numel(), out.data() + off);
      off += t->numel();
    }
  }
  if (off != out.size()) throw ShapeError("get_params: buffer size mismatch");
}

std::vector<float> Model::get_params() const {
  std::vector<float> out(num_params());
  get_params(std::span<float>{out});
  return out;
}

void Model::set_params(std::span<const float> in) {
  std::size_t off = 0;
  for (auto& l : layers_) {
    for (Tensor* t : l->params()) {
      if (off + t->numel() > in.size()) throw ShapeError("set_params: buffer too small");
      std::copy(in.data() + off, in.data() + off + t->numel(), t->data());
      off += t->numel();
    }
  }
  if (off != in.size()) throw ShapeError("set_params: buffer size mismatch");
}

const Tensor& Model::forward(const Tensor& x) {
  if (layers_.empty()) throw ConfigError("Model::forward: empty model");
  const Tensor* cur = &x;
  for (auto& l : layers_) cur = &l->forward(*cur);
  return *cur;
}

double Model::compute_gradients(const Tensor& x, std::span<const int> labels) {
  const Tensor& logits = forward(x);
  const double loss = loss_.forward(logits, labels);
  const Tensor* grad = &loss_.backward();
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) grad = &(*it)->backward(*grad);
  return loss;
}

void Model::get_gradients(std::span<float> out) const {
  std::size_t off = 0;
  for (const auto& l : layers_) {
    for (const Tensor* t : const_cast<Layer&>(*l).grads()) {
      if (off + t->numel() > out.size()) throw ShapeError("get_gradients: buffer too small");
      std::copy(t->data(), t->data() + t->numel(), out.data() + off);
      off += t->numel();
    }
  }
  if (off != out.size()) throw ShapeError("get_gradients: buffer size mismatch");
}

double Model::gradient_at(std::span<const float> params, const Tensor& x,
                          std::span<const int> labels, std::span<float> grad_out) {
  set_params(params);
  const double loss = compute_gradients(x, labels);
  get_gradients(grad_out);
  return loss;
}

double Model::evaluate_accuracy(const Dataset& data, std::size_t batch) {
  const std::size_t n = data.size();
  const std::size_t d = data.feature_dim();
  std::size_t correct_total = 0;
  std::vector<std::uint32_t> idx;
  Tensor bx;
  std::vector<int> by;
  for (std::size_t start = 0; start < n; start += batch) {
    const std::size_t len = std::min(batch, n - start);
    idx.resize(len);
    for (std::size_t i = 0; i < len; ++i) idx[i] = static_cast<std::uint32_t>(start + i);
    if (bx.rank() != 2 || bx.dim(0) != len) bx = Tensor({len, d});
    data.gather(idx, bx, by);
    const Tensor& logits = forward(bx);
    correct_total += static_cast<std::size_t>(
        top1_accuracy(logits, by) * static_cast<double>(len) + 0.5);
  }
  return n ? static_cast<double>(correct_total) / static_cast<double>(n) : 0.0;
}

double Model::evaluate_loss(const Dataset& data, std::size_t batch) {
  const std::size_t n = data.size();
  const std::size_t d = data.feature_dim();
  double loss_sum = 0.0;
  std::vector<std::uint32_t> idx;
  Tensor bx;
  std::vector<int> by;
  SoftmaxCrossEntropy head;
  for (std::size_t start = 0; start < n; start += batch) {
    const std::size_t len = std::min(batch, n - start);
    idx.resize(len);
    for (std::size_t i = 0; i < len; ++i) idx[i] = static_cast<std::uint32_t>(start + i);
    if (bx.rank() != 2 || bx.dim(0) != len) bx = Tensor({len, d});
    data.gather(idx, bx, by);
    const Tensor& logits = forward(bx);
    loss_sum += head.forward(logits, by) * static_cast<double>(len);
  }
  return n ? loss_sum / static_cast<double>(n) : 0.0;
}

Model Model::clone() const {
  Model copy;
  for (const auto& l : layers_) copy.layers_.push_back(l->clone());
  return copy;
}

std::string Model::summary() const {
  std::ostringstream os;
  for (const auto& l : layers_) os << l->describe() << "\n";
  os << "parameters: " << num_params() << "\n";
  return os.str();
}

}  // namespace ss
