// SGD with momentum over flat parameter vectors.
//
// Semantics follow TensorFlow's MomentumOptimizer (the framework the paper
// builds on): accum = momentum * accum + grad; param -= lr * accum.
// The optimizer state lives at the parameter server, so it is part of the
// checkpoint taken when Sync-Switch switches protocols.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ss {

class SgdMomentum {
 public:
  SgdMomentum(std::size_t num_params, double momentum);

  /// Apply one update in place.  `lr` is passed per call because the
  /// learning-rate schedule (and the configuration policy) changes it over
  /// the course of training.
  void apply(std::span<float> params, std::span<const float> grad, double lr);

  /// Apply an update to the contiguous slice of velocity state starting at
  /// `offset`: `params` and `grad` are the slice views, `offset` addresses
  /// the matching velocity range.  This is the sharded parameter server's
  /// primitive — each shard updates a disjoint slice, so concurrent calls on
  /// non-overlapping ranges are race-free and the result is bit-identical to
  /// one full-vector `apply`.
  void apply_range(std::span<float> params, std::span<const float> grad, double lr,
                   std::size_t offset);

  /// Sparse update: advance only the listed coordinates.  `params` is the
  /// full parameter vector; `indices[i]` addresses both `params` and the
  /// velocity state, receiving gradient `values[i]`.  Untouched coordinates
  /// keep their parameter *and* velocity bits — sparse momentum SGD only
  /// decays a coordinate's velocity when that coordinate is transmitted.
  /// For a single step from equal state, the arithmetic on a listed
  /// coordinate is bit-identical to a dense `apply` of the scattered vector.
  void apply_sparse(std::span<float> params, std::span<const std::uint32_t> indices,
                    std::span<const float> values, double lr);

  [[nodiscard]] double momentum() const noexcept { return momentum_; }

  /// Configuration policy hook: momentum may be rescaled when the protocol
  /// switches (Figure 8(b) ablations).
  void set_momentum(double momentum) noexcept { momentum_ = momentum; }

  [[nodiscard]] std::span<const float> velocity() const noexcept { return accum_; }
  [[nodiscard]] std::span<float> mutable_velocity() noexcept { return accum_; }

  /// Reset accumulated momentum (used by the "Zero" momentum ablation).
  void reset_velocity() noexcept;

 private:
  double momentum_;
  std::vector<float> accum_;
};

}  // namespace ss
