// Residual block (He et al., 2016 — the paper's workload family):
//
//   y = ReLU( x + BN(W2 * ReLU(BN(W1 * x))) )
//
// A width-preserving MLP residual block: two Dense layers with batch
// normalization and an identity skip connection.  The skip path is what
// gives the "resnet*_bn" zoo models the smoother optimization landscape of
// the paper's real ResNets.
#pragma once

#include "common/rng.h"
#include "nn/batchnorm.h"
#include "nn/dense.h"
#include "nn/layer.h"

namespace ss {

class ResidualBlock final : public Layer {
 public:
  /// Width-preserving block: both Dense layers are (dim x dim).
  ResidualBlock(std::size_t dim, Rng& rng);

  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& dy) override;
  std::vector<Tensor*> params() override;
  std::vector<Tensor*> grads() override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

 private:
  ResidualBlock(const ResidualBlock& other, int);  // clone helper

  std::size_t dim_;
  std::unique_ptr<Dense> fc1_;
  std::unique_ptr<BatchNorm> bn1_;
  std::unique_ptr<Dense> fc2_;
  std::unique_ptr<BatchNorm> bn2_;

  Tensor relu1_in_;   // BN1 output (pre-activation), cached for backward
  Tensor sum_;        // x + branch, pre final ReLU
  Tensor y_;          // final output
  Tensor dsum_;       // gradient at the addition
  Tensor dbranch_;    // gradient into the residual branch
  Tensor dx_;         // gradient to the input
};

}  // namespace ss
