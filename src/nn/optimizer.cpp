#include "nn/optimizer.h"

#include "common/error.h"

namespace ss {

SgdMomentum::SgdMomentum(std::size_t num_params, double momentum)
    : momentum_(momentum), accum_(num_params, 0.0f) {
  if (momentum < 0.0 || momentum >= 1.0)
    throw ConfigError("SgdMomentum: momentum must be in [0, 1)");
}

void SgdMomentum::apply(std::span<float> params, std::span<const float> grad, double lr) {
  if (params.size() != accum_.size() || grad.size() != accum_.size())
    throw ConfigError("SgdMomentum::apply: size mismatch");
  apply_range(params, grad, lr, 0);
}

void SgdMomentum::apply_range(std::span<float> params, std::span<const float> grad, double lr,
                              std::size_t offset) {
  if (params.size() != grad.size() || offset > accum_.size() ||
      params.size() > accum_.size() - offset)
    throw ConfigError("SgdMomentum::apply_range: slice out of bounds");
  const float mu = static_cast<float>(momentum_);
  const float eta = static_cast<float>(lr);
  float* accum = accum_.data() + offset;
  for (std::size_t i = 0; i < params.size(); ++i) {
    accum[i] = mu * accum[i] + grad[i];
    params[i] -= eta * accum[i];
  }
}

void SgdMomentum::apply_sparse(std::span<float> params, std::span<const std::uint32_t> indices,
                               std::span<const float> values, double lr) {
  if (params.size() != accum_.size())
    throw ConfigError("SgdMomentum::apply_sparse: parameter size mismatch");
  if (indices.size() != values.size())
    throw ConfigError("SgdMomentum::apply_sparse: index/value length mismatch");
  const float mu = static_cast<float>(momentum_);
  const float eta = static_cast<float>(lr);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t j = indices[i];
    if (j >= params.size())
      throw ConfigError("SgdMomentum::apply_sparse: index out of range");
    accum_[j] = mu * accum_[j] + values[i];
    params[j] -= eta * accum_[j];
  }
}

void SgdMomentum::reset_velocity() noexcept {
  for (auto& v : accum_) v = 0.0f;
}

}  // namespace ss
