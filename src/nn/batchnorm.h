// Batch normalization over features (Ioffe & Szegedy, 2015), the
// normalization the paper's real ResNet workloads rely on.
//
// This implementation always normalizes with the *current batch's*
// statistics (training-mode BatchNorm) rather than tracking running
// averages.  Rationale for this substrate: model parameters travel through
// the parameter server as a flat vector, and running statistics are local
// worker state that the PS protocols do not synchronize — exactly the
// ambiguity real distributed BN implementations face.  Using batch
// statistics everywhere keeps train/eval consistent under every
// synchronization protocol, at the cost of requiring non-trivial eval batch
// sizes (our evaluation batches are 128+).  See DESIGN.md.
#pragma once

#include "nn/layer.h"

namespace ss {

class BatchNorm final : public Layer {
 public:
  /// Normalizes each of `dim` features over the batch dimension of an
  /// (N, dim) input.  gamma initialized to 1, beta to 0.
  explicit BatchNorm(std::size_t dim, double eps = 1e-5);

  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& dy) override;
  std::vector<Tensor*> params() override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> grads() override { return {&dgamma_, &dbeta_}; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] double eps() const noexcept { return eps_; }

 private:
  std::size_t dim_;
  double eps_;
  Tensor gamma_;   // (dim)
  Tensor beta_;    // (dim)
  Tensor dgamma_;
  Tensor dbeta_;

  // Caches from forward, used by backward.
  Tensor xhat_;        // (N, dim) normalized input
  Tensor inv_std_;     // (dim) 1/sqrt(var + eps)
  Tensor y_;
  Tensor dx_;
};

}  // namespace ss
