#include "nn/dense.h"

#include <sstream>

#include "nn/init.h"
#include "tensor/ops.h"

namespace ss {

Dense::Dense(std::size_t in_dim, std::size_t out_dim, Rng& rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      w_({in_dim, out_dim}),
      b_({out_dim}, 0.0f),
      dw_({in_dim, out_dim}),
      db_({out_dim}) {
  he_init(w_, in_dim, rng);
}

Dense::Dense(const Dense& other, int)
    : in_dim_(other.in_dim_),
      out_dim_(other.out_dim_),
      w_(other.w_),
      b_(other.b_),
      dw_(other.dw_),
      db_(other.db_) {}

const Tensor& Dense::forward(const Tensor& x) {
  x_cache_ = x;
  const std::size_t m = x.dim(0);
  if (y_.rank() != 2 || y_.dim(0) != m || y_.dim(1) != out_dim_) y_ = Tensor({m, out_dim_});
  ops::matmul(x, w_, y_);
  ops::add_bias_rows(y_, b_);
  return y_;
}

const Tensor& Dense::backward(const Tensor& dy) {
  const std::size_t m = dy.dim(0);
  ops::matmul_tn(x_cache_, dy, dw_);  // dW = X^T dY
  ops::sum_rows(dy, db_);             // db = sum rows of dY
  if (dx_.rank() != 2 || dx_.dim(0) != m || dx_.dim(1) != in_dim_) dx_ = Tensor({m, in_dim_});
  ops::matmul_nt(dy, w_, dx_);        // dX = dY W^T
  return dx_;
}

std::unique_ptr<Layer> Dense::clone() const {
  return std::unique_ptr<Layer>(new Dense(*this, 0));
}

std::string Dense::describe() const {
  std::ostringstream os;
  os << "Dense(" << in_dim_ << " -> " << out_dim_ << ")";
  return os.str();
}

}  // namespace ss
