#include "nn/checkpoint.h"

#include <cstring>
#include <fstream>

#include "common/error.h"

namespace ss {

namespace {
constexpr std::uint32_t kCkptMagic = 0x53535357;  // "SSSW"
// v1: global_step + params + velocity.  v2 appends the PS shard layout
// (num_shards + per-shard version counters).
constexpr std::uint32_t kCkptVersion = 2;
}  // namespace

std::vector<std::uint8_t> Checkpoint::serialize() const {
  std::vector<std::uint8_t> out;
  const std::uint64_t np = params.size();
  const std::uint64_t nv = velocity.size();
  const std::uint64_t nsv = shard_versions.size();
  out.resize(sizeof(kCkptMagic) + sizeof(kCkptVersion) + sizeof(global_step) + sizeof(np) +
             sizeof(nv) + np * sizeof(float) + nv * sizeof(float) + sizeof(num_shards) +
             sizeof(nsv) + nsv * sizeof(std::int64_t));
  std::uint8_t* p = out.data();
  auto put = [&p](const void* src, std::size_t n) {
    if (n == 0) return;  // empty vectors hand over a null data()
    std::memcpy(p, src, n);
    p += n;
  };
  put(&kCkptMagic, sizeof(kCkptMagic));
  put(&kCkptVersion, sizeof(kCkptVersion));
  put(&global_step, sizeof(global_step));
  put(&np, sizeof(np));
  put(&nv, sizeof(nv));
  put(params.data(), np * sizeof(float));
  put(velocity.data(), nv * sizeof(float));
  put(&num_shards, sizeof(num_shards));
  put(&nsv, sizeof(nsv));
  put(shard_versions.data(), nsv * sizeof(std::int64_t));
  return out;
}

Checkpoint Checkpoint::deserialize(std::span<const std::uint8_t> bytes) {
  Checkpoint ckpt;
  const std::uint8_t* p = bytes.data();
  std::size_t remaining = bytes.size();
  auto get = [&](void* dst, std::size_t n) {
    if (remaining < n) throw CheckpointError("Checkpoint: truncated data");
    if (n == 0) return;  // resize(0) leaves a null data()
    std::memcpy(dst, p, n);
    p += n;
    remaining -= n;
  };
  std::uint32_t magic = 0, version = 0;
  get(&magic, sizeof(magic));
  if (magic != kCkptMagic) throw CheckpointError("Checkpoint: bad magic");
  get(&version, sizeof(version));
  if (version < 1 || version > kCkptVersion)
    throw CheckpointError("Checkpoint: unsupported version");
  // Validate counts against the bytes actually present *before* resizing,
  // so a corrupt length field reports CheckpointError instead of blowing up
  // inside vector::resize with bad_alloc/length_error.
  auto check_count = [&](std::uint64_t count, std::size_t elem_size) {
    if (count > remaining / elem_size) throw CheckpointError("Checkpoint: truncated data");
  };
  get(&ckpt.global_step, sizeof(ckpt.global_step));
  std::uint64_t np = 0, nv = 0;
  get(&np, sizeof(np));
  get(&nv, sizeof(nv));
  check_count(np, sizeof(float));
  ckpt.params.resize(np);
  get(ckpt.params.data(), np * sizeof(float));
  check_count(nv, sizeof(float));
  ckpt.velocity.resize(nv);
  get(ckpt.velocity.data(), nv * sizeof(float));
  if (version >= 2) {
    std::uint64_t nsv = 0;
    get(&ckpt.num_shards, sizeof(ckpt.num_shards));
    get(&nsv, sizeof(nsv));
    check_count(nsv, sizeof(std::int64_t));
    ckpt.shard_versions.resize(nsv);
    get(ckpt.shard_versions.data(), nsv * sizeof(std::int64_t));
  }
  if (remaining != 0) throw CheckpointError("Checkpoint: trailing bytes");
  return ckpt;
}

void Checkpoint::save(const std::string& path) const {
  const auto bytes = serialize();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw CheckpointError("Checkpoint::save: cannot open " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw CheckpointError("Checkpoint::save: write failed");
}

Checkpoint Checkpoint::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw CheckpointError("Checkpoint::load: cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw CheckpointError("Checkpoint::load: read failed");
  return deserialize(bytes);
}

}  // namespace ss
