#include "nn/batchnorm.h"

#include <cmath>

#include "common/error.h"

namespace ss {

BatchNorm::BatchNorm(std::size_t dim, double eps)
    : dim_(dim),
      eps_(eps),
      gamma_({dim}, 1.0f),
      beta_({dim}, 0.0f),
      dgamma_({dim}, 0.0f),
      dbeta_({dim}, 0.0f),
      inv_std_({dim}, 0.0f) {
  if (dim == 0) throw ConfigError("BatchNorm: dim must be > 0");
  if (eps <= 0.0) throw ConfigError("BatchNorm: eps must be > 0");
}

const Tensor& BatchNorm::forward(const Tensor& x) {
  if (x.rank() != 2 || x.dim(1) != dim_)
    throw ShapeError("BatchNorm: expected (N, " + std::to_string(dim_) + ") input, got " +
                     shape_str(x.shape()));
  const std::size_t n = x.dim(0);
  if (n < 2) throw ShapeError("BatchNorm: batch must have >= 2 examples");

  if (xhat_.numel() != x.numel()) {
    xhat_ = Tensor(x.shape());
    y_ = Tensor(x.shape());
    dx_ = Tensor(x.shape());
  }

  const auto nf = static_cast<float>(n);
  for (std::size_t j = 0; j < dim_; ++j) {
    float mean = 0.0f;
    for (std::size_t i = 0; i < n; ++i) mean += x.at2(i, j);
    mean /= nf;
    float var = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
      const float c = x.at2(i, j) - mean;
      var += c * c;
    }
    var /= nf;
    const float inv = 1.0f / std::sqrt(var + static_cast<float>(eps_));
    inv_std_[j] = inv;
    const float g = gamma_[j];
    const float be = beta_[j];
    for (std::size_t i = 0; i < n; ++i) {
      const float xh = (x.at2(i, j) - mean) * inv;
      xhat_.at2(i, j) = xh;
      y_.at2(i, j) = g * xh + be;
    }
  }
  return y_;
}

const Tensor& BatchNorm::backward(const Tensor& dy) {
  if (dy.shape() != xhat_.shape())
    throw ShapeError("BatchNorm::backward: dy shape " + shape_str(dy.shape()) +
                     " does not match cached forward " + shape_str(xhat_.shape()));
  const std::size_t n = dy.dim(0);
  const auto nf = static_cast<float>(n);

  // Standard batch-statistics backward:
  //   dx = (gamma * inv_std / N) * (N*dy - sum(dy) - xhat * sum(dy * xhat))
  for (std::size_t j = 0; j < dim_; ++j) {
    float sum_dy = 0.0f;
    float sum_dy_xhat = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
      const float d = dy.at2(i, j);
      sum_dy += d;
      sum_dy_xhat += d * xhat_.at2(i, j);
    }
    dgamma_[j] = sum_dy_xhat;
    dbeta_[j] = sum_dy;
    const float scale = gamma_[j] * inv_std_[j] / nf;
    for (std::size_t i = 0; i < n; ++i) {
      dx_.at2(i, j) =
          scale * (nf * dy.at2(i, j) - sum_dy - xhat_.at2(i, j) * sum_dy_xhat);
    }
  }
  return dx_;
}

std::unique_ptr<Layer> BatchNorm::clone() const {
  auto copy = std::make_unique<BatchNorm>(dim_, eps_);
  copy->gamma_ = gamma_;
  copy->beta_ = beta_;
  return copy;
}

std::string BatchNorm::describe() const {
  return "BatchNorm(" + std::to_string(dim_) + ")";
}

}  // namespace ss
