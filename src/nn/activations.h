// Stateless activation layers.
//
// No parameters, so params()/grads() stay empty and the parameter server
// never sees them; each instance only caches the forward activations it
// needs to compute its backward pass.
#pragma once

#include "nn/layer.h"

namespace ss {

class ReLU final : public Layer {
 public:
  ReLU() = default;
  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& dy) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string describe() const override { return "ReLU"; }

 private:
  Tensor x_cache_;
  Tensor y_;
  Tensor dx_;
};

class Tanh final : public Layer {
 public:
  Tanh() = default;
  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& dy) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string describe() const override { return "Tanh"; }

 private:
  Tensor y_;   // tanh output cached (backward uses 1 - y^2)
  Tensor dx_;
};

}  // namespace ss
