#include "nn/pool.h"

#include <sstream>

#include "common/error.h"

namespace ss {

MaxPool2x2::MaxPool2x2(std::size_t channels, std::size_t height, std::size_t width)
    : c_(channels), h_(height), w_(width), oh_(height / 2), ow_(width / 2) {
  if (height < 2 || width < 2) throw ShapeError("MaxPool2x2: input too small");
}

const Tensor& MaxPool2x2::forward(const Tensor& x) {
  if (x.rank() != 2 || x.dim(1) != c_ * h_ * w_)
    throw ShapeError("MaxPool2x2::forward: input shape mismatch");
  const std::size_t n = x.dim(0);
  if (y_.rank() != 2 || y_.dim(0) != n || y_.dim(1) != out_features())
    y_ = Tensor({n, out_features()});
  argmax_.assign(n * out_features(), 0);

  const float* px = x.data();
  float* py = y_.data();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < c_; ++c) {
      for (std::size_t oi = 0; oi < oh_; ++oi) {
        for (std::size_t oj = 0; oj < ow_; ++oj) {
          const std::size_t base = i * (c_ * h_ * w_) + c * h_ * w_;
          float best = -3.4e38f;
          std::uint32_t best_idx = 0;
          for (std::size_t di = 0; di < 2; ++di) {
            for (std::size_t dj = 0; dj < 2; ++dj) {
              const std::size_t idx = base + (oi * 2 + di) * w_ + (oj * 2 + dj);
              if (px[idx] > best) {
                best = px[idx];
                best_idx = static_cast<std::uint32_t>(idx);
              }
            }
          }
          const std::size_t out_idx = i * out_features() + c * oh_ * ow_ + oi * ow_ + oj;
          py[out_idx] = best;
          argmax_[out_idx] = best_idx;
        }
      }
    }
  }
  return y_;
}

const Tensor& MaxPool2x2::backward(const Tensor& dy) {
  const std::size_t n = dy.dim(0);
  if (dx_.rank() != 2 || dx_.dim(0) != n || dx_.dim(1) != c_ * h_ * w_)
    dx_ = Tensor({n, c_ * h_ * w_});
  dx_.fill(0.0f);
  const float* pdy = dy.data();
  float* pdx = dx_.data();
  for (std::size_t k = 0; k < n * out_features(); ++k) pdx[argmax_[k]] += pdy[k];
  return dx_;
}

std::unique_ptr<Layer> MaxPool2x2::clone() const {
  return std::make_unique<MaxPool2x2>(c_, h_, w_);
}

std::string MaxPool2x2::describe() const {
  std::ostringstream os;
  os << "MaxPool2x2(" << c_ << "x" << h_ << "x" << w_ << " -> " << c_ << "x" << oh_ << "x" << ow_
     << ")";
  return os.str();
}

}  // namespace ss
