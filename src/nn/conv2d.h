// 2-D convolution (stride 1, symmetric zero padding) via im2col.
//
// Input/output layout: (N, C*H*W) flattened rows; the layer knows its own
// C/H/W geometry.  This keeps the Model interface uniformly rank-2.
#pragma once

#include "common/rng.h"
#include "nn/layer.h"

namespace ss {

class Conv2D final : public Layer {
 public:
  /// kernel is kh x kw, `pad` zero-padding on each side (same-size output
  /// when pad = (k-1)/2).
  Conv2D(std::size_t in_channels, std::size_t height, std::size_t width,
         std::size_t out_channels, std::size_t kh, std::size_t kw, std::size_t pad, Rng& rng);

  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& dy) override;
  std::vector<Tensor*> params() override { return {&w_, &b_}; }
  std::vector<Tensor*> grads() override { return {&dw_, &db_}; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] std::size_t out_height() const noexcept { return oh_; }
  [[nodiscard]] std::size_t out_width() const noexcept { return ow_; }
  [[nodiscard]] std::size_t out_features() const noexcept { return out_c_ * oh_ * ow_; }

 private:
  Conv2D(const Conv2D& other, int);  // clone helper

  std::size_t in_c_, h_, w_px_, out_c_, kh_, kw_, pad_, oh_, ow_;
  Tensor w_;    // (out_c, in_c*kh*kw)
  Tensor b_;    // (out_c)
  Tensor dw_;
  Tensor db_;
  Tensor x_cache_;
  Tensor cols_;      // im2col buffer (in_c*kh*kw, oh*ow)
  Tensor dcols_;     // gradient buffer same shape
  Tensor y_;
  Tensor dx_;
};

}  // namespace ss
