// Fully-connected layer: y = x W + b.
//
// Weights are He-initialized at construction and exposed through the Layer
// params()/grads() protocol so the parameter server can pull/push them as
// flat tensors. `clone` produces an independent replica with identical
// weights — this is how each simulated worker gets its own model copy when
// a phase launches (see core/session.h).
#pragma once

#include "nn/layer.h"

#include "common/rng.h"

namespace ss {

class Dense final : public Layer {
 public:
  /// Creates a (in_dim x out_dim) weight matrix, He-initialized from `rng`.
  Dense(std::size_t in_dim, std::size_t out_dim, Rng& rng);

  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& dy) override;
  std::vector<Tensor*> params() override { return {&w_, &b_}; }
  std::vector<Tensor*> grads() override { return {&dw_, &db_}; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] std::size_t in_dim() const noexcept { return in_dim_; }
  [[nodiscard]] std::size_t out_dim() const noexcept { return out_dim_; }

 private:
  Dense(const Dense& other, int);  // clone helper

  std::size_t in_dim_;
  std::size_t out_dim_;
  Tensor w_;   // (in, out)
  Tensor b_;   // (out)
  Tensor dw_;
  Tensor db_;
  Tensor x_cache_;  // input from the last forward
  Tensor y_;        // output buffer
  Tensor dx_;       // input-gradient buffer
};

}  // namespace ss
