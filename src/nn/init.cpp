#include "nn/init.h"

#include <cmath>

namespace ss {

void he_init(Tensor& w, std::size_t fan_in, Rng& rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (std::size_t i = 0; i < w.numel(); ++i)
    w[i] = static_cast<float>(rng.gaussian(0.0, stddev));
}

void xavier_init(Tensor& w, std::size_t fan_in, std::size_t fan_out, Rng& rng) {
  const double a = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (std::size_t i = 0; i < w.numel(); ++i)
    w[i] = static_cast<float>(rng.uniform(-a, a));
}

}  // namespace ss
