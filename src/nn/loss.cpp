#include "nn/loss.h"

#include "common/error.h"
#include "tensor/ops.h"

namespace ss {

double SoftmaxCrossEntropy::forward(const Tensor& logits, std::span<const int> labels) {
  if (logits.rank() != 2 || logits.dim(0) != labels.size())
    throw ShapeError("SoftmaxCrossEntropy: logits/labels mismatch");
  if (probs_.rank() != 2 || probs_.dim(0) != logits.dim(0) || probs_.dim(1) != logits.dim(1)) {
    probs_ = Tensor(logits.shape());
    dlogits_ = Tensor(logits.shape());
  }
  labels_.assign(labels.begin(), labels.end());
  ops::softmax_rows(logits, probs_);
  return ops::cross_entropy_mean(probs_, labels_);
}

const Tensor& SoftmaxCrossEntropy::backward() {
  ops::softmax_xent_backward(probs_, labels_, dlogits_);
  return dlogits_;
}

double top1_accuracy(const Tensor& logits, std::span<const int> labels) {
  if (logits.rank() != 2 || logits.dim(0) != labels.size())
    throw ShapeError("top1_accuracy: logits/labels mismatch");
  std::vector<int> pred(labels.size());
  ops::argmax_rows(logits, pred);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i)
    if (pred[i] == labels[i]) ++correct;
  return labels.empty() ? 0.0
                        : static_cast<double>(correct) / static_cast<double>(labels.size());
}

}  // namespace ss
