// Sequential model container with flat-parameter transport.
//
// The parameter-server runtimes move parameters and gradients as flat float
// vectors ("what goes over the wire"); Model provides the flatten/unflatten
// bridge plus batched loss/gradient and evaluation entry points.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/layer.h"
#include "nn/loss.h"

namespace ss {

class Model {
 public:
  Model() = default;

  /// Append a layer (builder style).
  Model& add(std::unique_ptr<Layer> layer);

  /// Total number of scalar parameters.
  [[nodiscard]] std::size_t num_params() const;

  /// Copy all parameters into a flat vector (PS "pull" payload).
  void get_params(std::span<float> out) const;
  [[nodiscard]] std::vector<float> get_params() const;

  /// Load parameters from a flat vector (PS "push" of new weights).
  void set_params(std::span<const float> in);

  /// Forward to logits.
  const Tensor& forward(const Tensor& x);

  /// Forward + loss + backward; leaves gradients in the layers.  Returns
  /// mean cross-entropy over the batch.
  double compute_gradients(const Tensor& x, std::span<const int> labels);

  /// Copy current layer gradients into a flat vector, parallel to
  /// get_params() ordering.
  void get_gradients(std::span<float> out) const;

  /// Convenience: set_params + compute_gradients + get_gradients.  This is
  /// exactly one worker "task" in the paper's Figure 3.
  double gradient_at(std::span<const float> params, const Tensor& x,
                     std::span<const int> labels, std::span<float> grad_out);

  /// Top-1 accuracy over a dataset, evaluated in chunks of `batch` rows.
  double evaluate_accuracy(const Dataset& data, std::size_t batch = 512);

  /// Mean loss over a dataset (test loss; not used in the training loop).
  double evaluate_loss(const Dataset& data, std::size_t batch = 512);

  /// Deep copy (cloned layers); used for per-thread replicas.
  [[nodiscard]] Model clone() const;

  /// One line per layer.
  [[nodiscard]] std::string summary() const;

  [[nodiscard]] std::size_t num_layers() const noexcept { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  SoftmaxCrossEntropy loss_;
};

}  // namespace ss
