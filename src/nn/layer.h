// Layer abstraction for the sequential NN models trained by the PS runtimes.
//
// Layers own their parameters and gradients as Tensors and cache whatever
// they need between forward and backward.  A Model flattens parameters in and
// out for parameter-server transport, so layers also expose mutable views.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace ss {

/// Base class for all layers.  Not copyable through the base (clone() gives
/// deep copies for per-thread model replicas).
class Layer {
 public:
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Forward pass on a batch; caches activations for backward.
  virtual const Tensor& forward(const Tensor& x) = 0;

  /// Backward pass: receives dL/d(output), returns dL/d(input) and
  /// accumulates parameter gradients (overwrite semantics per step).
  virtual const Tensor& backward(const Tensor& dy) = 0;

  /// Mutable parameter tensors (may be empty for stateless layers).
  virtual std::vector<Tensor*> params() { return {}; }

  /// Gradient tensors, parallel to params().
  virtual std::vector<Tensor*> grads() { return {}; }

  /// Deep copy (fresh caches, copied parameters).
  [[nodiscard]] virtual std::unique_ptr<Layer> clone() const = 0;

  /// Human-readable layer description for model summaries.
  [[nodiscard]] virtual std::string describe() const = 0;

 protected:
  Layer() = default;
};

}  // namespace ss
