#include "nn/residual.h"

namespace ss {

ResidualBlock::ResidualBlock(std::size_t dim, Rng& rng)
    : dim_(dim),
      fc1_(std::make_unique<Dense>(dim, dim, rng)),
      bn1_(std::make_unique<BatchNorm>(dim)),
      fc2_(std::make_unique<Dense>(dim, dim, rng)),
      bn2_(std::make_unique<BatchNorm>(dim)) {}

ResidualBlock::ResidualBlock(const ResidualBlock& other, int)
    : dim_(other.dim_),
      fc1_(std::unique_ptr<Dense>(static_cast<Dense*>(other.fc1_->clone().release()))),
      bn1_(std::unique_ptr<BatchNorm>(
          static_cast<BatchNorm*>(other.bn1_->clone().release()))),
      fc2_(std::unique_ptr<Dense>(static_cast<Dense*>(other.fc2_->clone().release()))),
      bn2_(std::unique_ptr<BatchNorm>(
          static_cast<BatchNorm*>(other.bn2_->clone().release()))) {}

const Tensor& ResidualBlock::forward(const Tensor& x) {
  const Tensor& a1 = bn1_->forward(fc1_->forward(x));
  // ReLU between BN1 and FC2 (cache the pre-activation for backward).
  relu1_in_ = a1;
  Tensor relu1(a1.shape());
  for (std::size_t i = 0; i < a1.numel(); ++i) relu1[i] = a1[i] > 0.0f ? a1[i] : 0.0f;
  const Tensor& branch = bn2_->forward(fc2_->forward(relu1));

  if (sum_.numel() != x.numel()) {
    sum_ = Tensor(x.shape());
    y_ = Tensor(x.shape());
  }
  for (std::size_t i = 0; i < x.numel(); ++i) sum_[i] = x[i] + branch[i];
  for (std::size_t i = 0; i < x.numel(); ++i) y_[i] = sum_[i] > 0.0f ? sum_[i] : 0.0f;
  return y_;
}

const Tensor& ResidualBlock::backward(const Tensor& dy) {
  if (dsum_.numel() != dy.numel()) {
    dsum_ = Tensor(dy.shape());
    dx_ = Tensor(dy.shape());
  }
  // Through the final ReLU.
  for (std::size_t i = 0; i < dy.numel(); ++i) dsum_[i] = sum_[i] > 0.0f ? dy[i] : 0.0f;

  // Branch: BN2 -> FC2 -> inner ReLU -> BN1 -> FC1.
  const Tensor& d_fc2_out = bn2_->backward(dsum_);
  const Tensor& d_relu1 = fc2_->backward(d_fc2_out);
  if (dbranch_.numel() != d_relu1.numel()) dbranch_ = Tensor(d_relu1.shape());
  for (std::size_t i = 0; i < d_relu1.numel(); ++i)
    dbranch_[i] = relu1_in_[i] > 0.0f ? d_relu1[i] : 0.0f;
  const Tensor& d_bn1_in = bn1_->backward(dbranch_);
  const Tensor& d_branch_x = fc1_->backward(d_bn1_in);

  // Skip path adds the pass-through gradient.
  for (std::size_t i = 0; i < dy.numel(); ++i) dx_[i] = dsum_[i] + d_branch_x[i];
  return dx_;
}

std::vector<Tensor*> ResidualBlock::params() {
  std::vector<Tensor*> out;
  for (Layer* l : {static_cast<Layer*>(fc1_.get()), static_cast<Layer*>(bn1_.get()),
                   static_cast<Layer*>(fc2_.get()), static_cast<Layer*>(bn2_.get())})
    for (Tensor* t : l->params()) out.push_back(t);
  return out;
}

std::vector<Tensor*> ResidualBlock::grads() {
  std::vector<Tensor*> out;
  for (Layer* l : {static_cast<Layer*>(fc1_.get()), static_cast<Layer*>(bn1_.get()),
                   static_cast<Layer*>(fc2_.get()), static_cast<Layer*>(bn2_.get())})
    for (Tensor* t : l->grads()) out.push_back(t);
  return out;
}

std::unique_ptr<Layer> ResidualBlock::clone() const {
  return std::unique_ptr<Layer>(new ResidualBlock(*this, 0));
}

std::string ResidualBlock::describe() const {
  return "ResidualBlock(" + std::to_string(dim_) + ")";
}

}  // namespace ss
