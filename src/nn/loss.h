// Softmax cross-entropy head.
//
// Kept separate from the Layer stack: it consumes logits and labels, returns
// the scalar batch loss, and produces the logits gradient that seeds
// Model::backward.  This mirrors the paper's cross-entropy-per-minibatch
// training-loss metric (Section VI-A).
#pragma once

#include <span>

#include "tensor/tensor.h"

namespace ss {

class SoftmaxCrossEntropy {
 public:
  /// Computes probs + mean loss for the batch; call backward() afterwards.
  double forward(const Tensor& logits, std::span<const int> labels);

  /// dL/dlogits of the most recent forward().
  const Tensor& backward();

  /// Row-wise probabilities from the last forward (for inspection/tests).
  [[nodiscard]] const Tensor& probs() const noexcept { return probs_; }

 private:
  Tensor probs_;
  Tensor dlogits_;
  std::vector<int> labels_;
};

/// Top-1 accuracy of logits vs labels.
double top1_accuracy(const Tensor& logits, std::span<const int> labels);

}  // namespace ss
