// Learning-rate schedules.
//
// The paper uses the original ResNet recipe: base LR with piecewise decay by
// x0.1 at 50% of the step budget and x0.01 at 75% (Section VI-A).  Schedules
// are expressed over *global* step counts so BSP and ASP phases share one
// clock.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace ss {

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  /// Learning rate at a global step.
  [[nodiscard]] virtual double at(std::int64_t step) const = 0;
  [[nodiscard]] virtual std::unique_ptr<LrSchedule> clone() const = 0;
};

class ConstantLr final : public LrSchedule {
 public:
  explicit ConstantLr(double lr) : lr_(lr) {}
  [[nodiscard]] double at(std::int64_t) const override { return lr_; }
  [[nodiscard]] std::unique_ptr<LrSchedule> clone() const override {
    return std::make_unique<ConstantLr>(lr_);
  }

 private:
  double lr_;
};

/// Piecewise-constant decay: lr = base * factor_i for step >= boundary_i.
class PiecewiseDecay final : public LrSchedule {
 public:
  struct Piece {
    std::int64_t boundary_step;  ///< first step at which this factor applies
    double factor;               ///< multiplier on the base LR
  };

  /// `pieces` must be sorted by boundary_step ascending.
  PiecewiseDecay(double base_lr, std::vector<Piece> pieces);

  [[nodiscard]] double at(std::int64_t step) const override;
  [[nodiscard]] std::unique_ptr<LrSchedule> clone() const override;

  /// The paper's ResNet schedule: decay x0.1 at 50% and x0.01 at 75% of
  /// `total_steps`.
  [[nodiscard]] static PiecewiseDecay resnet_style(double base_lr, std::int64_t total_steps);

 private:
  double base_lr_;
  std::vector<Piece> pieces_;
};

}  // namespace ss
