#include "nn/lr_schedule.h"

#include "common/error.h"

namespace ss {

PiecewiseDecay::PiecewiseDecay(double base_lr, std::vector<Piece> pieces)
    : base_lr_(base_lr), pieces_(std::move(pieces)) {
  for (std::size_t i = 1; i < pieces_.size(); ++i)
    if (pieces_[i].boundary_step <= pieces_[i - 1].boundary_step)
      throw ConfigError("PiecewiseDecay: boundaries must be strictly increasing");
}

double PiecewiseDecay::at(std::int64_t step) const {
  double factor = 1.0;
  for (const auto& p : pieces_) {
    if (step >= p.boundary_step) factor = p.factor;
    else break;
  }
  return base_lr_ * factor;
}

std::unique_ptr<LrSchedule> PiecewiseDecay::clone() const {
  return std::make_unique<PiecewiseDecay>(*this);
}

PiecewiseDecay PiecewiseDecay::resnet_style(double base_lr, std::int64_t total_steps) {
  return PiecewiseDecay(base_lr, {{total_steps / 2, 0.1}, {total_steps * 3 / 4, 0.01}});
}

}  // namespace ss
