// Weight initializers.
//
// Deterministic given the Rng: every worker replica and every re-run of a
// bench configuration sees bit-identical starting weights, which is what
// lets the run cache (core/run_cache.h) treat a RunRequest hash as a full
// description of the training outcome.
#pragma once

#include "common/rng.h"
#include "tensor/tensor.h"

namespace ss {

/// He/Kaiming normal init for ReLU networks: N(0, sqrt(2/fan_in)).
void he_init(Tensor& w, std::size_t fan_in, Rng& rng);

/// Xavier/Glorot uniform: U(-a, a), a = sqrt(6/(fan_in+fan_out)).
void xavier_init(Tensor& w, std::size_t fan_in, std::size_t fan_out, Rng& rng);

}  // namespace ss
