// Weight initializers.
#pragma once

#include "common/rng.h"
#include "tensor/tensor.h"

namespace ss {

/// He/Kaiming normal init for ReLU networks: N(0, sqrt(2/fan_in)).
void he_init(Tensor& w, std::size_t fan_in, Rng& rng);

/// Xavier/Glorot uniform: U(-a, a), a = sqrt(6/(fan_in+fan_out)).
void xavier_init(Tensor& w, std::size_t fan_in, std::size_t fan_out, Rng& rng);

}  // namespace ss
