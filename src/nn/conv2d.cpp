#include "nn/conv2d.h"

#include <sstream>

#include "common/error.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace ss {

Conv2D::Conv2D(std::size_t in_channels, std::size_t height, std::size_t width,
               std::size_t out_channels, std::size_t kh, std::size_t kw, std::size_t pad,
               Rng& rng)
    : in_c_(in_channels),
      h_(height),
      w_px_(width),
      out_c_(out_channels),
      kh_(kh),
      kw_(kw),
      pad_(pad),
      oh_(height + 2 * pad - kh + 1),
      ow_(width + 2 * pad - kw + 1),
      w_({out_channels, in_channels * kh * kw}),
      b_({out_channels}, 0.0f),
      dw_({out_channels, in_channels * kh * kw}),
      db_({out_channels}),
      cols_({in_channels * kh * kw, oh_ * ow_}),
      dcols_({in_channels * kh * kw, oh_ * ow_}) {
  if (kh > height + 2 * pad || kw > width + 2 * pad)
    throw ShapeError("Conv2D: kernel larger than padded input");
  he_init(w_, in_channels * kh * kw, rng);
}

Conv2D::Conv2D(const Conv2D& other, int)
    : in_c_(other.in_c_),
      h_(other.h_),
      w_px_(other.w_px_),
      out_c_(other.out_c_),
      kh_(other.kh_),
      kw_(other.kw_),
      pad_(other.pad_),
      oh_(other.oh_),
      ow_(other.ow_),
      w_(other.w_),
      b_(other.b_),
      dw_(other.dw_),
      db_(other.db_),
      cols_(other.cols_),
      dcols_(other.dcols_) {}

const Tensor& Conv2D::forward(const Tensor& x) {
  if (x.rank() != 2 || x.dim(1) != in_c_ * h_ * w_px_)
    throw ShapeError("Conv2D::forward: expected (N, " + std::to_string(in_c_ * h_ * w_px_) +
                     ") input, got " + shape_str(x.shape()));
  x_cache_ = x;
  const std::size_t n = x.dim(0);
  if (y_.rank() != 2 || y_.dim(0) != n || y_.dim(1) != out_features())
    y_ = Tensor({n, out_features()});

  Tensor out_mat({out_c_, oh_ * ow_});
  for (std::size_t i = 0; i < n; ++i) {
    const std::span<const float> image{x.data() + i * in_c_ * h_ * w_px_, in_c_ * h_ * w_px_};
    ops::im2col(image, in_c_, h_, w_px_, kh_, kw_, pad_, cols_);
    ops::matmul(w_, cols_, out_mat);
    float* dst = y_.data() + i * out_features();
    const float* src = out_mat.data();
    for (std::size_t c = 0; c < out_c_; ++c) {
      const float bias = b_[c];
      for (std::size_t p = 0; p < oh_ * ow_; ++p) dst[c * oh_ * ow_ + p] = src[c * oh_ * ow_ + p] + bias;
    }
  }
  return y_;
}

const Tensor& Conv2D::backward(const Tensor& dy) {
  if (dy.rank() != 2 || dy.dim(1) != out_features())
    throw ShapeError("Conv2D::backward: gradient shape mismatch");
  const std::size_t n = dy.dim(0);
  if (dx_.rank() != 2 || dx_.dim(0) != n || dx_.dim(1) != in_c_ * h_ * w_px_)
    dx_ = Tensor({n, in_c_ * h_ * w_px_});
  dw_.fill(0.0f);
  db_.fill(0.0f);

  Tensor dy_mat({out_c_, oh_ * ow_});
  Tensor dw_sample({out_c_, in_c_ * kh_ * kw_});
  for (std::size_t i = 0; i < n; ++i) {
    // Rebuild cols for this sample (cheaper than caching N col matrices).
    const std::span<const float> image{x_cache_.data() + i * in_c_ * h_ * w_px_,
                                       in_c_ * h_ * w_px_};
    ops::im2col(image, in_c_, h_, w_px_, kh_, kw_, pad_, cols_);

    const float* src = dy.data() + i * out_features();
    std::copy(src, src + out_features(), dy_mat.data());

    ops::matmul_nt(dy_mat, cols_, dw_sample);  // (out_c, ickhkw)
    ops::add_inplace(dw_.span(), dw_sample.span());
    for (std::size_t c = 0; c < out_c_; ++c) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < oh_ * ow_; ++p) acc += src[c * oh_ * ow_ + p];
      db_[c] += acc;
    }

    ops::matmul_tn(w_, dy_mat, dcols_);  // (ickhkw, ohow)
    std::span<float> dimage{dx_.data() + i * in_c_ * h_ * w_px_, in_c_ * h_ * w_px_};
    ops::col2im(dcols_, in_c_, h_, w_px_, kh_, kw_, pad_, dimage);
  }
  return dx_;
}

std::unique_ptr<Layer> Conv2D::clone() const {
  return std::unique_ptr<Layer>(new Conv2D(*this, 0));
}

std::string Conv2D::describe() const {
  std::ostringstream os;
  os << "Conv2D(" << in_c_ << "x" << h_ << "x" << w_px_ << " -> " << out_c_ << "x" << oh_ << "x"
     << ow_ << ", k=" << kh_ << "x" << kw_ << ", pad=" << pad_ << ")";
  return os.str();
}

}  // namespace ss
