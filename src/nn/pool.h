// 2x2 max pooling (stride 2) over (N, C*H*W) rows.
//
// Input rows are flattened channel-major images (matching nn/conv2d.h);
// the layer remembers the argmax index of every output cell so backward
// can route gradients to exactly the winning inputs.
#pragma once

#include "nn/layer.h"

namespace ss {

class MaxPool2x2 final : public Layer {
 public:
  MaxPool2x2(std::size_t channels, std::size_t height, std::size_t width);

  const Tensor& forward(const Tensor& x) override;
  const Tensor& backward(const Tensor& dy) override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] std::size_t out_features() const noexcept { return c_ * oh_ * ow_; }
  [[nodiscard]] std::size_t out_height() const noexcept { return oh_; }
  [[nodiscard]] std::size_t out_width() const noexcept { return ow_; }

 private:
  std::size_t c_, h_, w_, oh_, ow_;
  Tensor y_;
  Tensor dx_;
  std::vector<std::uint32_t> argmax_;  // winning input index per output cell
};

}  // namespace ss
