#include "nn/activations.h"

#include <cmath>

#include "tensor/ops.h"

namespace ss {

const Tensor& ReLU::forward(const Tensor& x) {
  x_cache_ = x;
  if (y_.numel() != x.numel()) y_ = Tensor(x.shape());
  ops::relu_forward(x, y_);
  return y_;
}

const Tensor& ReLU::backward(const Tensor& dy) {
  if (dx_.numel() != dy.numel()) dx_ = Tensor(dy.shape());
  ops::relu_backward(x_cache_, dy, dx_);
  return dx_;
}

std::unique_ptr<Layer> ReLU::clone() const { return std::make_unique<ReLU>(); }

const Tensor& Tanh::forward(const Tensor& x) {
  if (y_.numel() != x.numel()) y_ = Tensor(x.shape());
  for (std::size_t i = 0; i < x.numel(); ++i) y_[i] = std::tanh(x[i]);
  return y_;
}

const Tensor& Tanh::backward(const Tensor& dy) {
  if (dx_.numel() != dy.numel()) dx_ = Tensor(dy.shape());
  for (std::size_t i = 0; i < dy.numel(); ++i) dx_[i] = dy[i] * (1.0f - y_[i] * y_[i]);
  return dx_;
}

std::unique_ptr<Layer> Tanh::clone() const { return std::make_unique<Tanh>(); }

}  // namespace ss
