// Checkpoint serialization for the protocol-switch mechanism.
//
// Sync-Switch's switch is implemented exactly as in the paper (Section V):
// checkpoint the training state, restart the tasks under the new protocol,
// restore from the checkpoint.  A checkpoint captures the PS-side state:
// model parameters, optimizer velocity, the global step, and (format v2)
// the PS shard layout with its per-shard version counters.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ss {

struct Checkpoint {
  std::int64_t global_step = 0;
  std::vector<float> params;
  std::vector<float> velocity;
  /// PS shard layout at checkpoint time.  1 = flat (also what legacy v1
  /// checkpoints deserialize to); a sharded server refuses to restore a
  /// checkpoint with a different multi-shard layout.
  std::uint64_t num_shards = 1;
  /// Per-shard update counters (empty for flat/legacy checkpoints).  Kept
  /// for reproducibility audits; restore never rolls versions back.
  std::vector<std::int64_t> shard_versions;

  /// Binary serialization (little-endian, versioned header).  Writes format
  /// v2; `deserialize` accepts v1 (no shard fields) and v2.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static Checkpoint deserialize(std::span<const std::uint8_t> bytes);

  /// File round-trip.
  void save(const std::string& path) const;
  [[nodiscard]] static Checkpoint load(const std::string& path);

  bool operator==(const Checkpoint&) const = default;
};

}  // namespace ss
