// Checkpoint serialization for the protocol-switch mechanism.
//
// Sync-Switch's switch is implemented exactly as in the paper (Section V):
// checkpoint the training state, restart the tasks under the new protocol,
// restore from the checkpoint.  A checkpoint captures the PS-side state:
// model parameters, optimizer velocity, and the global step.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ss {

struct Checkpoint {
  std::int64_t global_step = 0;
  std::vector<float> params;
  std::vector<float> velocity;

  /// Binary serialization (little-endian, versioned header).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static Checkpoint deserialize(std::span<const std::uint8_t> bytes);

  /// File round-trip.
  void save(const std::string& path) const;
  [[nodiscard]] static Checkpoint load(const std::string& path);

  bool operator==(const Checkpoint&) const = default;
};

}  // namespace ss
