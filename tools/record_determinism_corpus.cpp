// Prints the determinism-corpus fingerprint table (see
// tests/determinism_corpus.h) in the exact form test_determinism.cpp pins.
//
// Run after any *deliberate* semantic change to the simulator, and paste the
// output over the kExpectedFingerprints table — the accompanying CHANGES.md
// entry should say why the trajectories moved.
#include <iostream>

#include "../tests/determinism_corpus.h"

int main() {
  for (const ss::CorpusCase& c : ss::determinism_corpus()) {
    const ss::RunResult r = ss::TrainingSession(c.request).run();
    std::cout << "    {\"" << c.name << "\", \"" << ss::result_fingerprint(r)
              << "\"},\n";
  }
  return 0;
}
