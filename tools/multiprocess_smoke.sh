#!/usr/bin/env bash
# Multi-process recovery smoke test (ctest label: multiprocess).
#
# Starts one PS-server process and two worker processes over a Unix-domain
# socket, then SIGKILLs one worker mid-run — real process death, not a
# simulated flag.  The server must detect the dead socket, evict the worker,
# restore the latest asynchronous snapshot, and still complete the run with
# the survivor.  Asserts on the server's exit code, the survivor's exit
# code, and the eviction/restore lines in the server output.
#
# Usage: multiprocess_smoke.sh <path-to-sync_switch_cli>
set -u

CLI="${1:?usage: multiprocess_smoke.sh <path-to-sync_switch_cli>}"
DIR="$(mktemp -d)"
SOCK="$DIR/ps.sock"
trap 'kill -9 "$SERVER" "$W0" "$W1" 2>/dev/null; rm -rf "$DIR"' EXIT

fail() {
  echo "FAIL: $1"
  echo "--- server log ---"; cat "$DIR/server.log" 2>/dev/null
  echo "--- worker 0 log ---"; cat "$DIR/worker0.log" 2>/dev/null
  echo "--- worker 1 log ---"; cat "$DIR/worker1.log" 2>/dev/null
  exit 1
}

# The step quota is sized so the run is still going when the kill lands
# (~10k updates/s over a unix socket on one core => ~4s of run); the
# survivor then finishes the remaining steps alone.
"$CLI" serve --listen "unix:$SOCK" --workers 2 --steps 20000 --batch 16 \
  --snapshot-interval 32 --verbose --metrics-out "$DIR/metrics.txt" \
  >"$DIR/server.log" 2>&1 &
SERVER=$!
W0=""
W1=""

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  kill -0 "$SERVER" 2>/dev/null || fail "server exited before listening"
  sleep 0.1
done
[ -S "$SOCK" ] || fail "server socket never appeared"

"$CLI" worker --connect "unix:$SOCK" --verbose >"$DIR/worker0.log" 2>&1 &
W0=$!
"$CLI" worker --connect "unix:$SOCK" --verbose >"$DIR/worker1.log" 2>&1 &
W1=$!

# Only kill once both workers hold a slot and have had time to push a few
# updates, so the eviction happens mid-run rather than mid-handshake.
for _ in $(seq 1 100); do
  grep -q "worker 1 joined" "$DIR/server.log" && break
  sleep 0.1
done
grep -q "worker 1 joined" "$DIR/server.log" || fail "second worker never joined"
sleep 0.3

kill -9 "$W1" 2>/dev/null || fail "worker to kill had already exited (run too short)"
wait "$W1" 2>/dev/null

wait "$W0"
W0_RC=$?
wait "$SERVER"
SERVER_RC=$?
W1=""
W0=""
SERVER=""
trap 'rm -rf "$DIR"' EXIT

[ "$SERVER_RC" -eq 0 ] || fail "server exited with $SERVER_RC"
[ "$W0_RC" -eq 0 ] || fail "surviving worker exited with $W0_RC"
grep -q "evicted worker" "$DIR/server.log" || fail "server never evicted the killed worker"
grep -q "1 evicted" "$DIR/server.log" || fail "summary does not report the eviction"
grep -Eq "[1-9][0-9]* snapshot restores" "$DIR/server.log" \
  || fail "summary does not report a snapshot restore"
# The server ran with --metrics-out, so its exposition dump must exist and
# show real wire traffic (nonzero received-frame counter).
[ -f "$DIR/metrics.txt" ] || fail "server did not write metrics.txt"
grep -Eq "^ss_net_frames_received_total [1-9][0-9]*$" "$DIR/metrics.txt" \
  || fail "metrics dump has no nonzero ss_net_frames_received_total"
grep -q "metrics final" "$DIR/server.log" \
  || fail "server log has no dump-on-exit metrics line"

echo "PASS: killed worker evicted, snapshot restored, metrics dumped, run completed"
exit 0
