#!/usr/bin/env python3
"""Fail on dead relative links in the project's markdown docs.

Scans README.md and docs/*.md for markdown links and images
(`[text](target)` / `![alt](target)`) whose target is a *relative* path —
external URLs (`http:`, `https:`, `mailto:`, ...) and pure in-page anchors
(`#...`) are out of scope — resolves each against the containing file's
directory, strips any `#fragment`, and verifies the target exists in the
working tree. Docs in this repo link to each other and to source files
(`docs/CONTROLLER.md` -> `src/control/controller.h`), so a rename that
orphans a link fails CI instead of shipping a dead reference.

Usage:
  tools/check_doc_links.py [--root REPO_ROOT] [FILE...]

With no FILE arguments, checks README.md plus every docs/*.md under the
root (default: the repository the script lives in). Exit codes: 0 = all
links resolve, 1 = dead links (each printed as `file:line: target`),
2 = bad invocation.
"""

import argparse
import glob
import os
import re
import sys

# Inline links/images. Targets with spaces or nested parens are not used in
# this repo's docs; the simple form keeps false positives at zero.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://", "data:")


def iter_links(path):
    """Yield (line_number, target) for every markdown link in `path`."""
    with open(path, encoding="utf-8") as f:
        in_fence = False
        for lineno, line in enumerate(f, start=1):
            # Links inside fenced code blocks are sample output, not links.
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in LINK_RE.finditer(line):
                yield lineno, match.group(1)


def check_file(path):
    """Return a list of (lineno, target) dead links in one markdown file."""
    dead = []
    base = os.path.dirname(os.path.abspath(path))
    for lineno, target in iter_links(path):
        if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
            continue
        resolved = os.path.normpath(os.path.join(base, target.split("#", 1)[0]))
        if not os.path.exists(resolved):
            dead.append((lineno, target))
    return dead


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of this script's dir)")
    parser.add_argument("files", nargs="*",
                        help="markdown files to check (default: README.md + docs/*.md)")
    args = parser.parse_args()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    files = args.files or (
        [os.path.join(root, "README.md")]
        + sorted(glob.glob(os.path.join(root, "docs", "*.md"))))

    missing_inputs = [f for f in files if not os.path.isfile(f)]
    if missing_inputs:
        for f in missing_inputs:
            print(f"check_doc_links: no such file: {f}", file=sys.stderr)
        return 2

    total_links = 0
    failures = 0
    for path in files:
        dead = check_file(path)
        total_links += sum(1 for _ in iter_links(path))
        for lineno, target in dead:
            rel = os.path.relpath(path, root)
            print(f"{rel}:{lineno}: dead link: {target}", file=sys.stderr)
            failures += 1

    checked = ", ".join(os.path.relpath(f, root) for f in files)
    if failures:
        print(f"check_doc_links: {failures} dead link(s) across {checked}",
              file=sys.stderr)
        return 1
    print(f"check_doc_links: OK — {total_links} link(s) in {checked} all resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
