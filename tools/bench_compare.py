#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and flag regressions.

Used by CI's bench-smoke job: a checked-in baseline from
bench/baselines/ is compared against the fresh BENCH_threaded.json
produced on the runner.  CI machines are noisy and the baseline was
recorded on different hardware, so the default mode only *warns* on
regressions past the threshold; pass --strict to turn warnings into a
non-zero exit (useful when comparing runs from the same machine).

Baselines are stamped with the core count they were recorded on
(BENCH_threaded.<N>core.json): threaded-runtime numbers from a 1-core
box are not comparable to an 8-core run — a genuine parallel speedup
would read as noise against a serialized baseline, and a contention
regression would hide entirely.  Pass --baseline-family with the family
prefix and the script selects the member matching the candidate run's
`context.num_cpus`; when no member matches, the comparison is skipped
(exit 0) rather than judged against the wrong hardware shape.

Usage:
  tools/bench_compare.py --baseline OLD.json --current NEW.json \
      [--threshold 0.20] [--metric cpu_time] [--strict]
  tools/bench_compare.py --baseline-family bench/baselines/BENCH_threaded \
      --current NEW.json [...]

Exit codes: 0 = ok (or warnings in non-strict mode, or no family member
for this core count), 1 = regressions in --strict mode, 2 = bad input.
"""

import argparse
import json
import os
import sys


def read_num_cpus(path):
    """Return context.num_cpus from a google-benchmark JSON, or None."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    cpus = doc.get("context", {}).get("num_cpus")
    return int(cpus) if cpus is not None else None


def resolve_family_baseline(family, current_path):
    """Pick `<family>.<N>core.json` for the candidate run's core count.

    Returns None when the family has no member for that count — the caller
    skips the comparison instead of diffing against alien hardware.
    """
    cpus = read_num_cpus(current_path)
    if cpus is None:
        print(f"bench_compare: {current_path} carries no context.num_cpus; "
              "cannot select a family baseline", file=sys.stderr)
        sys.exit(2)
    candidate = f"{family}.{cpus}core.json"
    if os.path.exists(candidate):
        print(f"bench_compare: candidate ran on {cpus} core(s); "
              f"using baseline {candidate}")
        return candidate
    print(f"bench_compare: no baseline for {cpus} core(s) in family '{family}' "
          f"(expected {candidate}); skipping comparison.\n"
          f"To add one, record on a {cpus}-core machine and check the file in.")
    return None


def load_benchmarks(path, metric):
    """Return {name: metric_value} for every non-aggregate benchmark entry."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    out = {}
    for entry in doc.get("benchmarks", []):
        if entry.get("run_type", "iteration") == "aggregate":
            continue
        name = entry.get("name")
        value = entry.get(metric)
        if name is None or value is None:
            continue
        out[name] = float(value)
    if not out:
        print(f"bench_compare: no benchmark entries in {path}", file=sys.stderr)
        sys.exit(2)
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--baseline", help="checked-in baseline JSON")
    group.add_argument("--baseline-family",
                       help="baseline family prefix; selects "
                            "<prefix>.<N>core.json for the candidate's "
                            "context.num_cpus, skipping if absent")
    parser.add_argument("--current", required=True, help="freshly produced JSON")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="relative slowdown that counts as a regression (default 0.20)")
    parser.add_argument("--metric", default="cpu_time",
                        help="benchmark field to compare (default cpu_time; real_time "
                             "is noisier on shared runners)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on regressions instead of warning")
    args = parser.parse_args()

    baseline_path = args.baseline
    if args.baseline_family:
        baseline_path = resolve_family_baseline(args.baseline_family, args.current)
        if baseline_path is None:
            return 0

    baseline = load_benchmarks(baseline_path, args.metric)
    current = load_benchmarks(args.current, args.metric)

    regressions, improvements, skipped = [], [], []
    width = max(len(n) for n in sorted(set(baseline) | set(current)))
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  {'delta':>8}")
    for name in sorted(set(baseline) | set(current)):
        old, new = baseline.get(name), current.get(name)
        if old is None:
            print(f"{name:<{width}}  {'--':>12}  {new:>12.1f}  {'NEW':>8}")
            continue
        if new is None:
            # A baseline entry the candidate run did not produce (narrower
            # --benchmark_filter, bench compiled out, etc.) is skipped, not
            # an error: the baseline may legitimately be a superset.
            skipped.append(name)
            print(f"{name:<{width}}  {old:>12.1f}  {'--':>12}  {'SKIP':>8}")
            continue
        delta = (new - old) / old if old > 0 else 0.0
        marker = ""
        if delta > args.threshold:
            regressions.append((name, delta))
            marker = "  <-- REGRESSION"
        elif delta < -args.threshold:
            improvements.append((name, delta))
        print(f"{name:<{width}}  {old:>12.1f}  {new:>12.1f}  {delta:>+7.1%}{marker}")

    if skipped:
        print(f"\n{len(skipped)} baseline benchmark(s) absent from the candidate run "
              f"were skipped: {', '.join(skipped)}")
    if improvements:
        print(f"\n{len(improvements)} benchmark(s) improved by more than "
              f"{args.threshold:.0%}.")
    if regressions:
        print(f"\nWARNING: {len(regressions)} benchmark(s) regressed by more than "
              f"{args.threshold:.0%} ({args.metric}):", file=sys.stderr)
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}", file=sys.stderr)
        if args.strict:
            return 1
        print("(non-strict mode: warning only — cross-machine baselines are "
              "expected to drift)", file=sys.stderr)
    else:
        print(f"\nAll matched benchmarks within {args.threshold:.0%} of baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
