#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and flag regressions.

Used by CI's bench-smoke job: the checked-in baseline
(bench/baselines/BENCH_threaded.json) is compared against the fresh
BENCH_threaded.json produced on the runner.  CI machines are noisy and the
baseline was recorded on different hardware, so the default mode only
*warns* on regressions past the threshold; pass --strict to turn warnings
into a non-zero exit (useful when comparing runs from the same machine).

Usage:
  tools/bench_compare.py --baseline OLD.json --current NEW.json \
      [--threshold 0.20] [--metric cpu_time] [--strict]

Exit codes: 0 = ok (or warnings in non-strict mode), 1 = regressions in
--strict mode, 2 = bad input.
"""

import argparse
import json
import sys


def load_benchmarks(path, metric):
    """Return {name: metric_value} for every non-aggregate benchmark entry."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    out = {}
    for entry in doc.get("benchmarks", []):
        if entry.get("run_type", "iteration") == "aggregate":
            continue
        name = entry.get("name")
        value = entry.get(metric)
        if name is None or value is None:
            continue
        out[name] = float(value)
    if not out:
        print(f"bench_compare: no benchmark entries in {path}", file=sys.stderr)
        sys.exit(2)
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline", required=True, help="checked-in baseline JSON")
    parser.add_argument("--current", required=True, help="freshly produced JSON")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="relative slowdown that counts as a regression (default 0.20)")
    parser.add_argument("--metric", default="cpu_time",
                        help="benchmark field to compare (default cpu_time; real_time "
                             "is noisier on shared runners)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on regressions instead of warning")
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline, args.metric)
    current = load_benchmarks(args.current, args.metric)

    regressions, improvements, skipped = [], [], []
    width = max(len(n) for n in sorted(set(baseline) | set(current)))
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  {'delta':>8}")
    for name in sorted(set(baseline) | set(current)):
        old, new = baseline.get(name), current.get(name)
        if old is None:
            print(f"{name:<{width}}  {'--':>12}  {new:>12.1f}  {'NEW':>8}")
            continue
        if new is None:
            # A baseline entry the candidate run did not produce (narrower
            # --benchmark_filter, bench compiled out, etc.) is skipped, not
            # an error: the baseline may legitimately be a superset.
            skipped.append(name)
            print(f"{name:<{width}}  {old:>12.1f}  {'--':>12}  {'SKIP':>8}")
            continue
        delta = (new - old) / old if old > 0 else 0.0
        marker = ""
        if delta > args.threshold:
            regressions.append((name, delta))
            marker = "  <-- REGRESSION"
        elif delta < -args.threshold:
            improvements.append((name, delta))
        print(f"{name:<{width}}  {old:>12.1f}  {new:>12.1f}  {delta:>+7.1%}{marker}")

    if skipped:
        print(f"\n{len(skipped)} baseline benchmark(s) absent from the candidate run "
              f"were skipped: {', '.join(skipped)}")
    if improvements:
        print(f"\n{len(improvements)} benchmark(s) improved by more than "
              f"{args.threshold:.0%}.")
    if regressions:
        print(f"\nWARNING: {len(regressions)} benchmark(s) regressed by more than "
              f"{args.threshold:.0%} ({args.metric}):", file=sys.stderr)
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}", file=sys.stderr)
        if args.strict:
            return 1
        print("(non-strict mode: warning only — cross-machine baselines are "
              "expected to drift)", file=sys.stderr)
    else:
        print(f"\nAll matched benchmarks within {args.threshold:.0%} of baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
