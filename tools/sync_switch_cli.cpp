// sync_switch_cli: run one Sync-Switch training job from the command line.
//
// The paper's prototype lets practitioners "manage their distributed
// training jobs via the command line" (Section V); this is the equivalent
// entry point for the simulated cluster.
//
//   sync_switch_cli [--workers N] [--steps S] [--batch B] [--lr ETA]
//                   [--policy bsp|asp|ssp|dssp|switch] [--fraction F]
//                   [--arch resnet32_lite|resnet50_lite|linear]
//                   [--classes C] [--online none|greedy|elastic|replace]
//                   [--stragglers K] [--latency MS] [--seed X]
//                   [--trace FILE] [--verbose]
//
// Example: the paper's P1 policy on an 8-node cluster:
//   sync_switch_cli --workers 8 --policy switch --fraction 0.0625
//
// Scenario engine (src/scenario/): trace-driven and seeded-random workloads
// checked against the conformance invariants:
//   sync_switch_cli scenario gen --seed=7 --out spot.csv
//   sync_switch_cli scenario replay --seed=7 [--threaded]
//   sync_switch_cli scenario replay --file spot.csv
//   sync_switch_cli scenario fuzz --seeds=200 [--threaded-every=25]
//
// Multi-process deployment (src/net/): host the parameter server in one OS
// process and connect real worker processes over Unix-domain or TCP sockets
// (docs/EXPERIMENTS.md walks through killing a worker mid-run):
//   sync_switch_cli serve --listen unix:/tmp/ps.sock --workers 2 --steps 200
//   sync_switch_cli worker --connect unix:/tmp/ps.sock
//
// Parallel sweeps (src/core/sweep.h): evaluate a grid of independent configs
// across a thread pool — each simulation stays serial and bit-identical to a
// lone run, the parallelism is purely across configs:
//   sync_switch_cli sweep --policies bsp,asp,ssp,dssp --seeds 8 --jobs 4
//   sync_switch_cli sweep --scenario --start 1 --seeds 64 --cache /tmp/ss_cache
//
// Threaded training with the online controller (src/control/, docs/
// CONTROLLER.md): real worker threads, with the simulator in the loop as a
// digital twin pricing protocol/compression/membership moves at every drain
// barrier:
//   sync_switch_cli train --workers 4 --steps 240 --straggler 2 --factor 8
//   sync_switch_cli train --controller --interval 24 --straggler 2 --factor 8
//   sync_switch_cli train --controller --cache /tmp/ss_twin_cache --evict
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/log.h"
#include "common/parse.h"
#include "core/run_cache.h"
#include "core/session.h"
#include "core/sweep.h"
#include "data/synthetic.h"
#include "net/ps_server.h"
#include "net/worker_process.h"
#include "nn/zoo.h"
#include "obs/obs.h"
#include "ps/threaded_runtime.h"
#include "ps/trace.h"
#include "scenario/generator.h"
#include "scenario/invariants.h"
#include "scenario/trace_replay.h"

using namespace ss;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "       " << argv0 << " scenario gen|replay|fuzz [options]\n"
      << "       " << argv0 << " sweep [options]\n"
      << "       " << argv0 << " train [options]   (threaded runtime + online controller)\n"
      << "       " << argv0 << " serve|worker [options]\n"
      << "  --workers N        cluster size (default 8)\n"
      << "  --steps S          minibatch-step budget (default 2048)\n"
      << "  --batch B          per-worker batch size (default 64)\n"
      << "  --lr ETA           base learning rate (default 0.05)\n"
      << "  --momentum MU      momentum (default 0.9)\n"
      << "  --policy P         bsp | asp | ssp | dssp | switch (default switch)\n"
      << "  --fraction F       BSP fraction before the switch (default 0.0625)\n"
      << "  --arch A           resnet32_lite | resnet50_lite | linear\n"
      << "  --classes C        10 (cifar10-like) or 100 (cifar100-like)\n"
      << "  --online O         none | greedy | elastic | replace (default none)\n"
      << "  --stragglers K     inject K transient stragglers (default 0)\n"
      << "  --latency MS       straggler emulated latency in ms (default 30)\n"
      << "  --seed X           repetition seed (default 1)\n"
      << "  --trace FILE       write a Chrome trace-event JSON of the run\n"
      << "  --verbose          info-level logging of switches/evictions\n";
  std::exit(2);
}

[[noreturn]] void scenario_usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " scenario <subcommand> [options]\n"
      << "subcommands:\n"
      << "  gen      generate a seeded scenario and print it as a trace file\n"
      << "  replay   run one scenario (seeded or from a trace) against the\n"
      << "           conformance invariants\n"
      << "  fuzz     check a whole seed range, printing failing seeds as\n"
      << "           copy-pasteable replay commands\n"
      << "options (flags take '--flag value' or '--flag=value'):\n"
      << "  --seed N            scenario seed (gen/replay; default 1)\n"
      << "  --file TRACE        replay a CSV/JSON trace file instead of a seed\n"
      << "  --out FILE          gen: write the trace here instead of stdout\n"
      << "  --json              gen: emit the JSON trace form (default CSV)\n"
      << "  --threaded          replay: also cross-check on the threaded runtime\n"
      << "  --seeds N           fuzz: number of seeds to check (default 200)\n"
      << "  --start K           fuzz: first seed (default 1)\n"
      << "  --threaded-every M  fuzz: threaded cross-check every M-th seed\n"
      << "                      (default 25; 0 = simulator only)\n"
      << "  --workers N         generator cluster size (default 4)\n"
      << "  --steps S           generator step budget (default 256)\n"
      << "  --verbose           info-level logging\n";
  std::exit(2);
}

void print_scenario_result(const ScenarioReport& rep) {
  const RunResult& r = rep.result;
  std::cout << "  steps " << r.steps_completed << ", switches " << r.num_switches
            << ", membership events " << r.num_membership_events << ", updates lost "
            << r.updates_lost << "\n  accuracy " << r.final_accuracy << ", staleness "
            << r.mean_staleness << ", virtual time " << r.train_time_seconds << " s";
  if (rep.threaded_ran) std::cout << " (threaded cross-check ran)";
  std::cout << "\n";
}

int scenario_main(int argc, char** argv) {
  if (argc < 3) scenario_usage(argv[0]);
  const std::string sub = argv[2];
  if (sub != "gen" && sub != "replay" && sub != "fuzz") scenario_usage(argv[0]);

  std::uint64_t seed = 1, seeds = 200, start = 1, threaded_every = 25;
  std::string file, out;
  bool json = false, threaded = false;
  ScenarioGenConfig gen_cfg;

  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    std::string inline_value;
    bool has_inline = false;
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg = arg.substr(0, eq);
        has_inline = true;
      }
    }
    auto value = [&]() -> std::string {
      if (has_inline) return inline_value;
      if (i + 1 >= argc) scenario_usage(argv[0]);
      return argv[++i];
    };
    try {
      if (arg == "--seed") seed = parse_u64(arg, value());
      else if (arg == "--file") file = value();
      else if (arg == "--out") out = value();
      else if (arg == "--json") json = true;
      else if (arg == "--threaded") threaded = true;
      else if (arg == "--seeds") seeds = parse_u64(arg, value());
      else if (arg == "--start") start = parse_u64(arg, value());
      else if (arg == "--threaded-every") threaded_every = parse_u64(arg, value());
      else if (arg == "--workers") gen_cfg.num_workers = parse_u64(arg, value());
      else if (arg == "--steps") gen_cfg.total_steps = parse_i64(arg, value());
      else if (arg == "--verbose") set_log_level(LogLevel::kInfo);
      else scenario_usage(argv[0]);
    } catch (const ConfigError& e) {
      std::cerr << "error: " << e.what() << "\n";
      scenario_usage(argv[0]);
    }
  }

  try {
    if (sub == "gen") {
      const Scenario s = generate_scenario(seed, gen_cfg);
      const std::string text = json ? write_trace_json(s) : write_trace_csv(s);
      if (out.empty()) {
        std::cout << text;
      } else {
        std::ofstream f(out, std::ios::trunc);
        if (!f) {
          std::cerr << "error: cannot write " << out << "\n";
          return 1;
        }
        f << text;
        std::cout << "wrote " << out << "\n";
      }
      std::cerr << "scenario: " << s.label() << "\n";
      return 0;
    }

    if (sub == "replay") {
      const Scenario s = file.empty() ? generate_scenario(seed, gen_cfg) : load_trace_file(file);
      CheckOptions opts;
      opts.run_threaded = threaded;
      const ScenarioReport rep = check_scenario(s, opts);
      std::cout << rep.summary() << "\n";
      print_scenario_result(rep);
      return rep.passed() ? 0 : 1;
    }

    // fuzz
    std::uint64_t failures = 0, threaded_runs = 0;
    for (std::uint64_t k = 0; k < seeds; ++k) {
      const std::uint64_t sd = start + k;
      CheckOptions opts;
      opts.run_threaded = threaded_every > 0 && k % threaded_every == 0;
      const ScenarioReport rep = check_scenario(generate_scenario(sd, gen_cfg), opts);
      if (rep.threaded_ran) ++threaded_runs;
      if (!rep.passed()) {
        ++failures;
        std::cout << rep.summary() << "\n  reproduce: " << argv[0]
                  << " scenario replay --seed=" << sd;
        if (rep.threaded_ran) std::cout << " --threaded";
        std::cout << "\n";
      } else if ((k + 1) % 25 == 0 || k + 1 == seeds) {
        std::cout << "checked " << (k + 1) << "/" << seeds << " seeds, " << failures
                  << " failing\n";
      }
    }
    std::cout << "fuzz: " << seeds << " seeds (" << threaded_runs << " with threaded cross-check), "
              << failures << " failing\n";
    return failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

[[noreturn]] void sweep_usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " sweep [options]\n"
      << "Evaluate a grid of independent configurations across a thread pool.\n"
      << "Each simulation is serial and bit-identical to a lone run; only the\n"
      << "scheduling across configs is parallel, so results never depend on\n"
      << "--jobs.\n"
      << "grid mode (default): policies x repetition seeds\n"
      << "  --policies LIST    comma list of bsp|asp|ssp|dssp|switch\n"
      << "                     (default bsp,asp,ssp,dssp)\n"
      << "  --seeds N          repetition seeds per policy (default 8)\n"
      << "  --start K          first seed (default 1)\n"
      << "  --fraction F       'switch' policy's BSP fraction (default 0.0625)\n"
      << "  --workers N        cluster size (default 8)\n"
      << "  --steps S          step budget per run (default 512)\n"
      << "  --batch B          per-worker batch size (default 64)\n"
      << "  --arch A           resnet32_lite | resnet50_lite | linear\n"
      << "scenario mode:\n"
      << "  --scenario         sweep generated fuzz scenarios for the seed\n"
      << "                     range [start, start + seeds) instead of a grid\n"
      << "shared:\n"
      << "  --jobs J           pool threads (default 0 = all hardware cores)\n"
      << "  --cache DIR        shared run-cache directory; hits skip the run\n"
      << "                     (concurrent writers are safe: tmp + rename)\n"
      << "  --verbose          info-level logging\n";
  std::exit(2);
}

int sweep_main(int argc, char** argv) {
  std::string policies = "bsp,asp,ssp,dssp";
  std::uint64_t seeds = 8, start = 1, jobs = 0;
  std::string cache_dir, arch;
  double fraction = 0.0625;
  bool scenario_mode = false;

  RunRequest base;  // mirrors the single-run defaults, with a smaller budget
  base.workload.arch = ModelArch::kResNet32Lite;
  base.workload.data = SyntheticSpec::cifar10_like();
  base.workload.total_steps = 512;
  base.workload.hyper.batch_size = 64;
  base.workload.hyper.learning_rate = 0.05;
  base.workload.hyper.momentum = 0.9;
  base.workload.eval_interval = 64;
  base.cluster.num_workers = 8;
  base.cluster.compute_per_batch = VTime::from_ms(120.0);
  base.cluster.sync_base = VTime::from_ms(287.0);
  base.cluster.sync_quad = VTime::from_ms(6.4);

  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    std::string inline_value;
    bool has_inline = false;
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg = arg.substr(0, eq);
        has_inline = true;
      }
    }
    auto value = [&]() -> std::string {
      if (has_inline) return inline_value;
      if (i + 1 >= argc) sweep_usage(argv[0]);
      return argv[++i];
    };
    try {
      if (arg == "--policies") policies = value();
      else if (arg == "--seeds") seeds = parse_u64(arg, value());
      else if (arg == "--start") start = parse_u64(arg, value());
      else if (arg == "--fraction") fraction = parse_double(arg, value());
      else if (arg == "--workers") base.cluster.num_workers = parse_u64(arg, value());
      else if (arg == "--steps") base.workload.total_steps = parse_i64(arg, value());
      else if (arg == "--batch") base.workload.hyper.batch_size = parse_u64(arg, value());
      else if (arg == "--arch") arch = value();
      else if (arg == "--scenario") scenario_mode = true;
      else if (arg == "--jobs") jobs = parse_u64(arg, value());
      else if (arg == "--cache") cache_dir = value();
      else if (arg == "--verbose") set_log_level(LogLevel::kInfo);
      else sweep_usage(argv[0]);
    } catch (const ConfigError& e) {
      std::cerr << "error: " << e.what() << "\n";
      sweep_usage(argv[0]);
    }
  }
  if (arch == "linear") base.workload.arch = ModelArch::kLinear;
  else if (arch == "resnet50_lite") base.workload.arch = ModelArch::kResNet50Lite;
  else if (!arch.empty() && arch != "resnet32_lite") sweep_usage(argv[0]);
  base.actuator_time_scale = static_cast<double>(base.workload.total_steps) / 65536.0;

  std::vector<RunRequest> grid;
  std::vector<std::string> labels;
  if (scenario_mode) {
    for (std::uint64_t k = 0; k < seeds; ++k) {
      const std::uint64_t sd = start + k;
      grid.push_back(generate_scenario(sd).to_run_request());
      labels.push_back("scenario seed " + std::to_string(sd));
    }
  } else {
    std::vector<std::string> names;
    for (std::size_t pos = 0; pos < policies.size();) {
      const std::size_t comma = policies.find(',', pos);
      const std::size_t end = comma == std::string::npos ? policies.size() : comma;
      if (end > pos) names.push_back(policies.substr(pos, end - pos));
      pos = end + 1;
    }
    if (names.empty()) sweep_usage(argv[0]);
    for (const std::string& name : names) {
      SyncSwitchPolicy policy;
      if (name == "bsp") policy = SyncSwitchPolicy::pure(Protocol::kBsp);
      else if (name == "asp") policy = SyncSwitchPolicy::pure(Protocol::kAsp);
      else if (name == "ssp") policy = SyncSwitchPolicy::pure(Protocol::kSsp);
      else if (name == "dssp") policy = SyncSwitchPolicy::pure(Protocol::kDssp);
      else if (name == "switch") policy = SyncSwitchPolicy::bsp_to_asp(fraction);
      else sweep_usage(argv[0]);
      for (std::uint64_t s = 0; s < seeds; ++s) {
        RunRequest req = base;
        req.policy = policy;
        req.seed = start + s;
        grid.push_back(std::move(req));
        labels.push_back(name + " seed " + std::to_string(start + s));
      }
    }
  }

  std::optional<RunCache> cache;
  if (!cache_dir.empty()) cache.emplace(cache_dir);
  SweepOptions opts;
  opts.jobs = jobs;
  opts.cache = cache ? &*cache : nullptr;
  const SweepRunner runner(opts);

  std::cout << "sweep: " << grid.size() << " configs across "
            << runner.effective_jobs(grid.size()) << " threads";
  if (cache) std::cout << ", cache " << cache_dir;
  std::cout << "\n";

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<SweepOutcome> outcomes = runner.run(grid);
  const double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  std::size_t failures = 0, hits = 0;
  double serial_seconds = 0.0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const SweepOutcome& o = outcomes[i];
    serial_seconds += o.wall_seconds;
    if (!o.error.empty()) {
      ++failures;
      std::cout << "  " << labels[i] << ": ERROR " << o.error << "\n";
      continue;
    }
    if (o.from_cache) ++hits;
    std::cout << "  " << labels[i] << ": accuracy " << o.result.final_accuracy
              << ", virtual time " << o.result.train_time_seconds / 60.0
              << " min, staleness " << o.result.mean_staleness
              << (o.from_cache ? " (cached)" : "") << "\n";
  }
  std::cout << "sweep: " << outcomes.size() << " configs in " << wall
            << " s wall (entries sum " << serial_seconds << " s, speedup "
            << (wall > 0 ? serial_seconds / wall : 0.0) << "x)";
  if (cache) std::cout << ", " << hits << " cache hits";
  if (failures) std::cout << ", " << failures << " FAILED";
  std::cout << "\n";
  return failures == 0 ? 0 : 1;
}

/// Observability flags shared by the real runtimes (train/serve/worker):
/// --trace-out / --metrics-out arm the process-global tracer/registry before
/// the run and export after it; --log-level sets the logger floor.
struct ObsFlags {
  std::string trace_out;
  std::string metrics_out;

  /// Returns true when `arg` is an obs flag (and consumes its value).
  template <typename ValueFn, typename UsageFn>
  bool parse(const std::string& arg, ValueFn&& value, UsageFn&& usage_fn) {
    if (arg == "--trace-out") {
      trace_out = value();
    } else if (arg == "--metrics-out") {
      metrics_out = value();
    } else if (arg == "--log-level") {
      const std::string level = value();
      if (const auto parsed = parse_log_level(level)) set_log_level(*parsed);
      else usage_fn();
    } else {
      return false;
    }
    return true;
  }

  void arm() const {
    if (!trace_out.empty()) obs::enable_tracing();
    if (!metrics_out.empty()) obs::enable_metrics();
  }

  [[nodiscard]] bool metrics_enabled() const { return !metrics_out.empty(); }

  /// Export whatever the run recorded.  Call after the run completes.
  void finish() const {
    if (!trace_out.empty()) {
      obs::tracer().save_chrome_trace(trace_out);
      std::cout << "trace: " << obs::tracer().recorded() << " events ("
                << obs::tracer().dropped() << " dropped) -> " << trace_out
                << " (open in chrome://tracing or ui.perfetto.dev)\n";
    }
    if (!metrics_out.empty()) {
      std::ofstream out(metrics_out);
      if (!out) throw IoError("cannot open " + metrics_out);
      out << obs::metrics().expose_text();
      if (!out.good()) throw IoError("write failed for " + metrics_out);
      std::cout << "metrics: -> " << metrics_out << "\n";
    }
  }
};

const char* kObsUsage =
    "observability (off by default; see docs/ARCHITECTURE.md):\n"
    "  --trace-out FILE   record wall-clock spans; write a Chrome trace JSON\n"
    "  --metrics-out FILE record counters/histograms; write Prometheus text\n"
    "  --log-level L      debug | info | warn | error | off (or SS_LOG_LEVEL)\n";

[[noreturn]] void train_usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " train [options]\n"
      << "Train on the real threaded parameter-server runtime (OS threads, one\n"
      << "shared PS).  With --controller, the online policy controller runs the\n"
      << "simulator as a digital twin at every decision barrier and switches\n"
      << "protocol / compression / membership live (docs/CONTROLLER.md).\n"
      << "run options (flags take '--flag value' or '--flag=value'):\n"
      << "  --workers N        worker threads (default 4)\n"
      << "  --steps S          local steps per worker (default 240)\n"
      << "  --batch B          per-worker batch size (default 32)\n"
      << "  --lr ETA           learning rate (default 0.05)\n"
      << "  --momentum MU      momentum (default 0.9)\n"
      << "  --protocol P       bsp | asp | ssp starting protocol (default bsp)\n"
      << "  --ssp-bound K      SSP staleness bound (default 3)\n"
      << "  --shards K         PS shard count (default 1)\n"
      << "  --arch A           linear | resnet32_lite | resnet50_lite (default linear)\n"
      << "  --classes C        10 or 100 (default 10)\n"
      << "  --compress C       none | topk | terngrad | qsgd (default none)\n"
      << "  --straggler W      inject a wall-clock straggler on worker slot W\n"
      << "  --factor F         straggler slowdown factor (default 8)\n"
      << "  --switch-at N      schedule: BSP for the first N steps, then ASP\n"
      << "  --seed X           run seed (default 99)\n"
      << "controller options:\n"
      << "  --controller       enable the online controller\n"
      << "  --interval I       local steps between decision barriers (default 32)\n"
      << "  --min-gain G       min predicted relative gain to move (default 0.10)\n"
      << "  --move-gap M       min local steps between enacted moves (default 64)\n"
      << "  --target-acc A     twin time-to-accuracy target (default 0.60)\n"
      << "  --horizon H        twin simulation horizon in steps (default 192)\n"
      << "  --cache DIR        twin run-cache directory (persists across runs)\n"
      << "  --evict            let the controller evict the measured straggler\n"
      << "  --verbose          info-level logging\n"
      << kObsUsage;
  std::exit(2);
}

void print_threaded_phases(const ThreadedTrainResult& result) {
  std::printf("  %-5s %-9s %7s %8s %10s %10s %8s\n", "phase", "protocol", "steps", "updates",
              "staleness", "upd/s", "wall s");
  for (std::size_t i = 0; i < result.phases.size(); ++i) {
    const ThreadedPhaseStats& s = result.phases[i];
    std::printf("  %-5zu %-9s %7lld %8lld %10.2f %10.1f %8.3f\n", i,
                protocol_name(s.protocol).c_str(), static_cast<long long>(s.steps),
                static_cast<long long>(s.updates), s.mean_staleness, s.updates_per_sec,
                s.wall_seconds);
  }
}

void print_decisions(const std::vector<ControllerDecision>& decisions) {
  if (decisions.empty()) return;
  std::printf("  %-6s %-9s %-16s %-15s %6s %6s %7s %5s %8s\n", "step", "from", "chosen",
              "reason", "pred%", "real%", "factor", "hits", "decide s");
  for (const ControllerDecision& d : decisions) {
    std::printf("  %-6lld %-9s %-16s %-15s %6.1f %6.1f %7.1f %5zu %8.3f\n",
                static_cast<long long>(d.at_step), protocol_name(d.protocol_before).c_str(),
                d.chosen.label().c_str(), d.reason.c_str(), d.predicted_gain * 100.0,
                d.realized_gain * 100.0, d.measured.straggler_factor, d.cache_hits,
                d.decide_wall_seconds);
  }
}

int train_main(int argc, char** argv) {
  ThreadedTrainConfig cfg;
  cfg.num_workers = 4;
  cfg.steps_per_worker = 240;
  cfg.batch_size = 32;
  std::string protocol = "bsp", arch = "linear", compress = "none";
  int classes = 10;
  int straggler = -1;
  double factor = 8.0;
  std::int64_t switch_at = -1;
  ObsFlags obs_flags;

  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    std::string inline_value;
    bool has_inline = false;
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg = arg.substr(0, eq);
        has_inline = true;
      }
    }
    auto value = [&]() -> std::string {
      if (has_inline) return inline_value;
      if (i + 1 >= argc) train_usage(argv[0]);
      return argv[++i];
    };
    try {
      if (arg == "--workers") cfg.num_workers = parse_u64(arg, value());
      else if (arg == "--steps") cfg.steps_per_worker = parse_i64(arg, value());
      else if (arg == "--batch") cfg.batch_size = parse_u64(arg, value());
      else if (arg == "--lr") cfg.lr = parse_double(arg, value());
      else if (arg == "--momentum") cfg.momentum = parse_double(arg, value());
      else if (arg == "--protocol") protocol = value();
      else if (arg == "--ssp-bound") cfg.ssp_staleness_bound = parse_int(arg, value());
      else if (arg == "--shards") cfg.num_ps_shards = parse_u64(arg, value());
      else if (arg == "--arch") arch = value();
      else if (arg == "--classes") classes = parse_int(arg, value());
      else if (arg == "--compress") compress = value();
      else if (arg == "--straggler") straggler = parse_int(arg, value());
      else if (arg == "--factor") factor = parse_double(arg, value());
      else if (arg == "--switch-at") switch_at = parse_i64(arg, value());
      else if (arg == "--seed") cfg.seed = parse_u64(arg, value());
      else if (arg == "--controller") cfg.controller.enabled = true;
      else if (arg == "--interval") cfg.controller.decision_interval = parse_i64(arg, value());
      else if (arg == "--min-gain") cfg.controller.min_predicted_gain = parse_double(arg, value());
      else if (arg == "--move-gap")
        cfg.controller.min_steps_between_moves = parse_i64(arg, value());
      else if (arg == "--target-acc") cfg.controller.target_accuracy = parse_double(arg, value());
      else if (arg == "--horizon") cfg.controller.twin_horizon_steps = parse_i64(arg, value());
      else if (arg == "--cache") cfg.controller.cache_dir = value();
      else if (arg == "--evict") cfg.controller.consider_eviction = true;
      else if (arg == "--verbose") set_log_level(LogLevel::kInfo);
      else if (obs_flags.parse(arg, value, [&] { train_usage(argv[0]); })) {}
      else train_usage(argv[0]);
    } catch (const ConfigError& e) {
      std::cerr << "error: " << e.what() << "\n";
      train_usage(argv[0]);
    }
  }

  if (protocol == "bsp") cfg.protocol = Protocol::kBsp;
  else if (protocol == "asp") cfg.protocol = Protocol::kAsp;
  else if (protocol == "ssp") cfg.protocol = Protocol::kSsp;
  else train_usage(argv[0]);

  if (compress == "topk") cfg.compression = CompressionSpec::topk(0.01);
  else if (compress == "terngrad") cfg.compression = CompressionSpec::terngrad();
  else if (compress == "qsgd") cfg.compression = CompressionSpec::qsgd(15);
  else if (compress != "none") train_usage(argv[0]);

  ModelArch model_arch;
  if (arch == "linear") model_arch = ModelArch::kLinear;
  else if (arch == "resnet32_lite") model_arch = ModelArch::kResNet32Lite;
  else if (arch == "resnet50_lite") model_arch = ModelArch::kResNet50Lite;
  else train_usage(argv[0]);

  if (straggler >= 0) {
    if (static_cast<std::size_t>(straggler) >= cfg.num_workers) {
      std::cerr << "error: --straggler slot " << straggler << " out of range for "
                << cfg.num_workers << " workers\n";
      return 2;
    }
    cfg.stragglers = StragglerSchedule::transient(straggler, VTime::from_seconds(0.0),
                                                  VTime::from_seconds(1e9), factor);
  }

  if (switch_at >= 0) {
    try {
      cfg.schedule = SwitchSchedule::bsp_to_asp(switch_at);
    } catch (const ConfigError& e) {
      std::cerr << "error: --switch-at " << switch_at << ": " << e.what() << "\n";
      return 2;
    }
  }

  SyntheticSpec spec = classes == 100 ? SyntheticSpec::cifar100_like()
                                      : SyntheticSpec::cifar10_like();
  if (classes != 10 && classes != 100) train_usage(argv[0]);
  spec.train_size = 2048;
  spec.test_size = 512;
  const DataSplit data = make_synthetic(spec);

  Rng rng(21);
  Model model = make_model(model_arch, spec.feature_dim, spec.num_classes, rng);

  std::cout << "threaded training: " << arch_name(model_arch) << ", " << cfg.num_workers
            << " worker threads, " << cfg.steps_per_worker << " steps/worker, start protocol "
            << protocol;
  if (cfg.controller.enabled)
    std::cout << ", controller on (interval " << cfg.controller.decision_interval << ")";
  if (straggler >= 0)
    std::cout << ", straggler on worker " << straggler << " (x" << factor << ")";
  if (switch_at >= 0) std::cout << ", switch BSP->ASP at step " << switch_at;
  std::cout << "\n";

  try {
    obs_flags.arm();
    const auto t0 = std::chrono::steady_clock::now();
    const ThreadedTrainResult result = threaded_train(model, data.train, cfg);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    Model trained = model.clone();
    trained.set_params(result.final_params);
    std::cout << "result: " << result.total_updates << " PS updates in " << wall
              << " s wall, mean staleness " << result.mean_staleness << ", test accuracy "
              << trained.evaluate_accuracy(data.test) << "\n";
    std::cout << "phases:\n";
    print_threaded_phases(result);
    if (!result.decisions.empty()) {
      std::cout << "controller decisions:\n";
      print_decisions(result.decisions);
    }
    obs_flags.finish();
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

[[noreturn]] void net_usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " serve [options]   (host the parameter server)\n"
      << "       " << argv0 << " worker [options]  (connect one training worker)\n"
      << "serve options (flags take '--flag value' or '--flag=value'):\n"
      << "  --listen EP            unix:<path> or tcp:<host>:<port>; tcp port 0 binds an\n"
      << "                         ephemeral port (default unix:/tmp/sync_switch_ps.sock)\n"
      << "  --workers N            worker processes to admit (default 2)\n"
      << "  --steps S              steps per worker (default 100)\n"
      << "  --batch B              per-worker batch size (default 32)\n"
      << "  --lr ETA               learning rate (default 0.05)\n"
      << "  --momentum MU          momentum (default 0.9)\n"
      << "  --seed X               run seed, shipped to workers (default 99)\n"
      << "  --shards K             PS shard count (default 1)\n"
      << "  --snapshot-interval U  PS updates between async snapshots; 0 = run-start\n"
      << "                         snapshot only (default 64)\n"
      << "  --arch A               linear | resnet32_lite | resnet50_lite (default linear)\n"
      << "  --classes C            10 or 100 (default 10)\n"
      << "  --compress C           none | topk | terngrad | qsgd (default none)\n"
      << "worker options:\n"
      << "  --connect EP           server endpoint (default unix:/tmp/sync_switch_ps.sock)\n"
      << "  --crash-after N        abruptly disconnect after N steps (recovery testing)\n"
      << "both:\n"
      << "  --verbose              info-level logging\n"
      << kObsUsage
      << "  (serve with --metrics-out also logs a metrics line every 5 s)\n";
  std::exit(2);
}

/// Shared '--flag value' / '--flag=value' splitter for the net subcommands.
struct FlagCursor {
  int argc;
  char** argv;
  int i;
  std::string arg{};
  std::string inline_value{};
  bool has_inline = false;

  bool next() {
    if (i >= argc) return false;
    arg = argv[i];
    has_inline = false;
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg = arg.substr(0, eq);
        has_inline = true;
      }
    }
    return true;
  }

  std::string value(const char* argv0) {
    if (has_inline) return inline_value;
    if (i + 1 >= argc) net_usage(argv0);
    return argv[++i];
  }
};

int serve_main(int argc, char** argv) {
  PsServerConfig cfg;
  cfg.snapshot_interval = 64;
  ObsFlags obs_flags;
  for (FlagCursor c{argc, argv, 2}; c.next(); ++c.i) {
    auto value = [&] { return c.value(argv[0]); };
    try {
      if (c.arg == "--listen") cfg.listen = value();
      else if (c.arg == "--workers") cfg.num_workers = parse_u64(c.arg, value());
      else if (c.arg == "--steps") cfg.steps_per_worker = parse_i64(c.arg, value());
      else if (c.arg == "--batch") cfg.batch_size = parse_u64(c.arg, value());
      else if (c.arg == "--lr") cfg.lr = parse_double(c.arg, value());
      else if (c.arg == "--momentum") cfg.momentum = parse_double(c.arg, value());
      else if (c.arg == "--seed") cfg.seed = parse_u64(c.arg, value());
      else if (c.arg == "--shards") cfg.num_ps_shards = parse_u64(c.arg, value());
      else if (c.arg == "--snapshot-interval") cfg.snapshot_interval = parse_i64(c.arg, value());
      else if (c.arg == "--verbose") set_log_level(LogLevel::kInfo);
      else if (c.arg == "--arch") {
        const std::string a = value();
        if (a == "linear") cfg.arch = ModelArch::kLinear;
        else if (a == "resnet32_lite") cfg.arch = ModelArch::kResNet32Lite;
        else if (a == "resnet50_lite") cfg.arch = ModelArch::kResNet50Lite;
        else net_usage(argv[0]);
      } else if (c.arg == "--classes") {
        const int cls = parse_int(c.arg, value());
        if (cls == 10) cfg.data = SyntheticSpec::cifar10_like();
        else if (cls == 100) cfg.data = SyntheticSpec::cifar100_like();
        else net_usage(argv[0]);
      } else if (c.arg == "--compress") {
        const std::string k = value();
        if (k == "none") cfg.compression = CompressionSpec::none();
        else if (k == "topk") cfg.compression = CompressionSpec::topk(0.01);
        else if (k == "terngrad") cfg.compression = CompressionSpec::terngrad();
        else if (k == "qsgd") cfg.compression = CompressionSpec::qsgd(15);
        else net_usage(argv[0]);
      } else if (obs_flags.parse(c.arg, value, [&] { net_usage(argv[0]); })) {
      } else {
        net_usage(argv[0]);
      }
    } catch (const ConfigError& e) {
      std::cerr << "error: " << e.what() << "\n";
      net_usage(argv[0]);
    }
  }
  try {
    obs_flags.arm();
    // Metrics-armed servers report on a fixed cadence so a watcher (or the
    // smoke script's log) can see frame counters move mid-run.
    if (obs_flags.metrics_enabled()) cfg.metrics_period_seconds = 5.0;
    const PsServerResult r = run_ps_server(cfg);
    std::cout << "ps_server: " << r.total_updates << " updates from " << r.workers_joined
              << " workers (" << r.workers_evicted << " evicted, " << r.snapshots_restored
              << " snapshot restores, " << r.updates_lost << " updates lost)\n"
              << "ps_server: final accuracy " << r.final_accuracy << "\n";
    obs_flags.finish();
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

int worker_main(int argc, char** argv) {
  WorkerProcessConfig cfg;
  cfg.endpoint = "unix:/tmp/sync_switch_ps.sock";
  ObsFlags obs_flags;
  for (FlagCursor c{argc, argv, 2}; c.next(); ++c.i) {
    auto value = [&] { return c.value(argv[0]); };
    try {
      if (c.arg == "--connect") cfg.endpoint = value();
      else if (c.arg == "--crash-after") cfg.crash_after_steps = parse_i64(c.arg, value());
      else if (c.arg == "--verbose") set_log_level(LogLevel::kInfo);
      else if (obs_flags.parse(c.arg, value, [&] { net_usage(argv[0]); })) {}
      else net_usage(argv[0]);
    } catch (const ConfigError& e) {
      std::cerr << "error: " << e.what() << "\n";
      net_usage(argv[0]);
    }
  }
  try {
    obs_flags.arm();
    const WorkerProcessResult r = run_worker_process(cfg);
    if (!r.drained && cfg.crash_after_steps >= 0) {
      std::cout << "worker " << r.worker << ": simulated crash after " << r.steps
                << " steps\n";
      obs_flags.finish();
      return 0;
    }
    std::cout << "worker " << r.worker << ": " << r.steps << " steps, " << r.push_bytes
              << " push bytes, mean staleness " << r.mean_staleness
              << (r.drained ? ", drained" : "") << "\n";
    obs_flags.finish();
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "scenario") return scenario_main(argc, argv);
  if (argc >= 2 && std::string(argv[1]) == "sweep") return sweep_main(argc, argv);
  if (argc >= 2 && std::string(argv[1]) == "train") return train_main(argc, argv);
  if (argc >= 2 && std::string(argv[1]) == "serve") return serve_main(argc, argv);
  if (argc >= 2 && std::string(argv[1]) == "worker") return worker_main(argc, argv);
  RunRequest req;
  req.workload.arch = ModelArch::kResNet32Lite;
  req.workload.data = SyntheticSpec::cifar10_like();
  req.workload.total_steps = 2048;
  req.workload.hyper.batch_size = 64;
  req.workload.hyper.learning_rate = 0.05;
  req.workload.hyper.momentum = 0.9;
  req.workload.eval_interval = 64;
  req.cluster.num_workers = 8;
  req.cluster.compute_per_batch = VTime::from_ms(120.0);
  req.cluster.sync_base = VTime::from_ms(287.0);
  req.cluster.sync_quad = VTime::from_ms(6.4);
  req.policy = SyncSwitchPolicy::bsp_to_asp(0.0625);
  req.seed = 1;

  std::string policy = "switch";
  std::string trace_path;
  double fraction = 0.0625;
  int stragglers = 0;
  double latency_ms = 30.0;

  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--workers") req.cluster.num_workers = parse_u64(arg, need_value(i));
      else if (arg == "--steps") req.workload.total_steps = parse_i64(arg, need_value(i));
      else if (arg == "--batch") req.workload.hyper.batch_size = parse_u64(arg, need_value(i));
      else if (arg == "--lr") req.workload.hyper.learning_rate = parse_double(arg, need_value(i));
      else if (arg == "--momentum") req.workload.hyper.momentum = parse_double(arg, need_value(i));
      else if (arg == "--policy") policy = need_value(i);
      else if (arg == "--fraction") fraction = parse_double(arg, need_value(i));
      else if (arg == "--seed") req.seed = parse_u64(arg, need_value(i));
      else if (arg == "--trace") trace_path = need_value(i);
      else if (arg == "--stragglers") stragglers = parse_int(arg, need_value(i));
      else if (arg == "--latency") latency_ms = parse_double(arg, need_value(i));
      else if (arg == "--verbose") set_log_level(LogLevel::kInfo);
      else if (arg == "--arch") {
        const std::string a = need_value(i);
        if (a == "resnet32_lite") req.workload.arch = ModelArch::kResNet32Lite;
        else if (a == "resnet50_lite") req.workload.arch = ModelArch::kResNet50Lite;
        else if (a == "linear") req.workload.arch = ModelArch::kLinear;
        else usage(argv[0]);
      } else if (arg == "--classes") {
        const int c = parse_int(arg, need_value(i));
        if (c == 10) req.workload.data = SyntheticSpec::cifar10_like();
        else if (c == 100) req.workload.data = SyntheticSpec::cifar100_like();
        else usage(argv[0]);
      } else if (arg == "--online") {
        const std::string o = need_value(i);
        if (o == "none") req.policy.online = OnlinePolicy::kNone;
        else if (o == "greedy") req.policy.online = OnlinePolicy::kGreedy;
        else if (o == "elastic") req.policy.online = OnlinePolicy::kElastic;
        else if (o == "replace") req.policy.online = OnlinePolicy::kReplace;
        else usage(argv[0]);
      } else {
        usage(argv[0]);
      }
    } catch (const ConfigError& e) {
      std::cerr << "error: " << e.what() << "\n";
      usage(argv[0]);
    }
  }

  const OnlinePolicy online = req.policy.online;
  if (policy == "bsp") req.policy = SyncSwitchPolicy::pure(Protocol::kBsp);
  else if (policy == "asp") req.policy = SyncSwitchPolicy::pure(Protocol::kAsp);
  else if (policy == "ssp") req.policy = SyncSwitchPolicy::pure(Protocol::kSsp);
  else if (policy == "dssp") req.policy = SyncSwitchPolicy::pure(Protocol::kDssp);
  else if (policy == "switch") req.policy = SyncSwitchPolicy::bsp_to_asp(fraction);
  else usage(argv[0]);
  req.policy.online = online;

  req.actuator_time_scale = static_cast<double>(req.workload.total_steps) / 65536.0;
  if (stragglers > 0) {
    req.stragglers.num_stragglers = stragglers;
    req.stragglers.occurrences = 2;
    req.stragglers.extra_latency_ms = latency_ms;
    req.stragglers.max_duration = VTime::from_seconds(30.0);
    req.stragglers.horizon = VTime::from_seconds(60.0);
  }

  std::cout << "training " << arch_name(req.workload.arch) << " on "
            << req.workload.data.num_classes << "-class synthetic data, "
            << req.cluster.num_workers << " workers, policy " << policy;
  if (policy == "switch")
    std::cout << " (BSP " << fraction * 100 << "% -> ASP, online "
              << online_policy_name(req.policy.online) << ")";
  std::cout << "\n";

  try {
    TraceRecorder trace;
    if (!trace_path.empty()) req.observer = &trace;
    const RunResult r = TrainingSession(req).run();
    if (!trace_path.empty()) {
      trace.save_chrome_trace(trace_path);
      std::cout << "trace: " << trace.total_recorded() << " events -> " << trace_path
                << " (open in chrome://tracing or ui.perfetto.dev)\n";
    }
    if (r.diverged) {
      std::cout << "result: DIVERGED after " << r.steps_completed << " steps ("
                << r.train_time_seconds / 60.0 << " virtual min)\n";
      return 1;
    }
    std::cout << "result: converged accuracy " << r.converged_accuracy << " (best "
              << r.best_accuracy << ")\n"
              << "        training time " << r.train_time_seconds / 60.0
              << " virtual min, throughput " << static_cast<long>(r.throughput_images_per_sec)
              << " img/s\n"
              << "        switches " << r.num_switches << " (overhead "
              << r.switch_overhead_seconds << " s), mean staleness " << r.mean_staleness
              << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
