// sync_switch_cli: run one Sync-Switch training job from the command line.
//
// The paper's prototype lets practitioners "manage their distributed
// training jobs via the command line" (Section V); this is the equivalent
// entry point for the simulated cluster.
//
//   sync_switch_cli [--workers N] [--steps S] [--batch B] [--lr ETA]
//                   [--policy bsp|asp|ssp|dssp|switch] [--fraction F]
//                   [--arch resnet32_lite|resnet50_lite|linear]
//                   [--classes C] [--online none|greedy|elastic|replace]
//                   [--stragglers K] [--latency MS] [--seed X]
//                   [--trace FILE] [--verbose]
//
// Example: the paper's P1 policy on an 8-node cluster:
//   sync_switch_cli --workers 8 --policy switch --fraction 0.0625
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/log.h"
#include "core/session.h"
#include "ps/trace.h"

using namespace ss;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --workers N        cluster size (default 8)\n"
      << "  --steps S          minibatch-step budget (default 2048)\n"
      << "  --batch B          per-worker batch size (default 64)\n"
      << "  --lr ETA           base learning rate (default 0.05)\n"
      << "  --momentum MU      momentum (default 0.9)\n"
      << "  --policy P         bsp | asp | ssp | dssp | switch (default switch)\n"
      << "  --fraction F       BSP fraction before the switch (default 0.0625)\n"
      << "  --arch A           resnet32_lite | resnet50_lite | linear\n"
      << "  --classes C        10 (cifar10-like) or 100 (cifar100-like)\n"
      << "  --online O         none | greedy | elastic | replace (default none)\n"
      << "  --stragglers K     inject K transient stragglers (default 0)\n"
      << "  --latency MS       straggler emulated latency in ms (default 30)\n"
      << "  --seed X           repetition seed (default 1)\n"
      << "  --trace FILE       write a Chrome trace-event JSON of the run\n"
      << "  --verbose          info-level logging of switches/evictions\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  RunRequest req;
  req.workload.arch = ModelArch::kResNet32Lite;
  req.workload.data = SyntheticSpec::cifar10_like();
  req.workload.total_steps = 2048;
  req.workload.hyper.batch_size = 64;
  req.workload.hyper.learning_rate = 0.05;
  req.workload.hyper.momentum = 0.9;
  req.workload.eval_interval = 64;
  req.cluster.num_workers = 8;
  req.cluster.compute_per_batch = VTime::from_ms(120.0);
  req.cluster.sync_base = VTime::from_ms(287.0);
  req.cluster.sync_quad = VTime::from_ms(6.4);
  req.policy = SyncSwitchPolicy::bsp_to_asp(0.0625);
  req.seed = 1;

  std::string policy = "switch";
  std::string trace_path;
  double fraction = 0.0625;
  int stragglers = 0;
  double latency_ms = 30.0;

  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--workers") req.cluster.num_workers = std::stoul(need_value(i));
      else if (arg == "--steps") req.workload.total_steps = std::stoll(need_value(i));
      else if (arg == "--batch") req.workload.hyper.batch_size = std::stoul(need_value(i));
      else if (arg == "--lr") req.workload.hyper.learning_rate = std::stod(need_value(i));
      else if (arg == "--momentum") req.workload.hyper.momentum = std::stod(need_value(i));
      else if (arg == "--policy") policy = need_value(i);
      else if (arg == "--fraction") fraction = std::stod(need_value(i));
      else if (arg == "--seed") req.seed = std::stoull(need_value(i));
      else if (arg == "--trace") trace_path = need_value(i);
      else if (arg == "--stragglers") stragglers = std::stoi(need_value(i));
      else if (arg == "--latency") latency_ms = std::stod(need_value(i));
      else if (arg == "--verbose") set_log_level(LogLevel::kInfo);
      else if (arg == "--arch") {
        const std::string a = need_value(i);
        if (a == "resnet32_lite") req.workload.arch = ModelArch::kResNet32Lite;
        else if (a == "resnet50_lite") req.workload.arch = ModelArch::kResNet50Lite;
        else if (a == "linear") req.workload.arch = ModelArch::kLinear;
        else usage(argv[0]);
      } else if (arg == "--classes") {
        const int c = std::stoi(need_value(i));
        if (c == 10) req.workload.data = SyntheticSpec::cifar10_like();
        else if (c == 100) req.workload.data = SyntheticSpec::cifar100_like();
        else usage(argv[0]);
      } else if (arg == "--online") {
        const std::string o = need_value(i);
        if (o == "none") req.policy.online = OnlinePolicy::kNone;
        else if (o == "greedy") req.policy.online = OnlinePolicy::kGreedy;
        else if (o == "elastic") req.policy.online = OnlinePolicy::kElastic;
        else if (o == "replace") req.policy.online = OnlinePolicy::kReplace;
        else usage(argv[0]);
      } else {
        usage(argv[0]);
      }
    } catch (const std::invalid_argument&) {
      usage(argv[0]);
    }
  }

  const OnlinePolicy online = req.policy.online;
  if (policy == "bsp") req.policy = SyncSwitchPolicy::pure(Protocol::kBsp);
  else if (policy == "asp") req.policy = SyncSwitchPolicy::pure(Protocol::kAsp);
  else if (policy == "ssp") req.policy = SyncSwitchPolicy::pure(Protocol::kSsp);
  else if (policy == "dssp") req.policy = SyncSwitchPolicy::pure(Protocol::kDssp);
  else if (policy == "switch") req.policy = SyncSwitchPolicy::bsp_to_asp(fraction);
  else usage(argv[0]);
  req.policy.online = online;

  req.actuator_time_scale = static_cast<double>(req.workload.total_steps) / 65536.0;
  if (stragglers > 0) {
    req.stragglers.num_stragglers = stragglers;
    req.stragglers.occurrences = 2;
    req.stragglers.extra_latency_ms = latency_ms;
    req.stragglers.max_duration = VTime::from_seconds(30.0);
    req.stragglers.horizon = VTime::from_seconds(60.0);
  }

  std::cout << "training " << arch_name(req.workload.arch) << " on "
            << req.workload.data.num_classes << "-class synthetic data, "
            << req.cluster.num_workers << " workers, policy " << policy;
  if (policy == "switch")
    std::cout << " (BSP " << fraction * 100 << "% -> ASP, online "
              << online_policy_name(req.policy.online) << ")";
  std::cout << "\n";

  try {
    TraceRecorder trace;
    if (!trace_path.empty()) req.observer = &trace;
    const RunResult r = TrainingSession(req).run();
    if (!trace_path.empty()) {
      trace.save_chrome_trace(trace_path);
      std::cout << "trace: " << trace.total_recorded() << " events -> " << trace_path
                << " (open in chrome://tracing or ui.perfetto.dev)\n";
    }
    if (r.diverged) {
      std::cout << "result: DIVERGED after " << r.steps_completed << " steps ("
                << r.train_time_seconds / 60.0 << " virtual min)\n";
      return 1;
    }
    std::cout << "result: converged accuracy " << r.converged_accuracy << " (best "
              << r.best_accuracy << ")\n"
              << "        training time " << r.train_time_seconds / 60.0
              << " virtual min, throughput " << static_cast<long>(r.throughput_images_per_sec)
              << " img/s\n"
              << "        switches " << r.num_switches << " (overhead "
              << r.switch_overhead_seconds << " s), mean staleness " << r.mean_staleness
              << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
