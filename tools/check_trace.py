#!/usr/bin/env python3
"""Validate a Chrome trace-event file written by the sim's TraceRecorder or
the obs wall tracer.

Checks that the file is a well-formed JSON array of event objects, that every
event carries the mandatory Chrome trace fields for its phase, and (with
--expect NAME, repeatable) that at least one event with each expected name is
present.  Exits nonzero with a diagnostic on any failure, so CI can gate on
``sync_switch_cli train --trace-out ...`` actually producing an openable
Perfetto timeline.

Usage: check_trace.py TRACE.json [--expect NAME]... [--min-events N]
"""

import argparse
import json
import sys

# Mandatory keys per event phase ("ph").  "M" metadata events name threads or
# carry trace-level metadata; "X" completes need a duration; "i" instants and
# "C" counters are point events.
REQUIRED_KEYS = {
    "X": ("pid", "tid", "ts", "dur", "name"),
    "i": ("pid", "tid", "ts", "name"),
    "C": ("pid", "ts", "name"),
    "M": ("pid", "name"),
}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument(
        "--expect",
        action="append",
        default=[],
        metavar="NAME",
        help="require at least one event with this name (repeatable)",
    )
    parser.add_argument(
        "--min-events",
        type=int,
        default=1,
        metavar="N",
        help="require at least N non-metadata events (default 1)",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            events = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_trace: {args.trace}: {e}", file=sys.stderr)
        return 1

    if not isinstance(events, list):
        print(f"check_trace: {args.trace}: top-level JSON is not an array", file=sys.stderr)
        return 1

    names = set()
    payload_events = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            print(f"check_trace: event {i} is not an object", file=sys.stderr)
            return 1
        ph = ev.get("ph")
        if ph not in REQUIRED_KEYS:
            print(f"check_trace: event {i} has unknown phase {ph!r}", file=sys.stderr)
            return 1
        missing = [k for k in REQUIRED_KEYS[ph] if k not in ev]
        if missing:
            print(
                f"check_trace: event {i} (ph={ph}, name={ev.get('name')!r}) "
                f"missing keys {missing}",
                file=sys.stderr,
            )
            return 1
        if ph != "M":
            payload_events += 1
            names.add(ev["name"])

    if payload_events < args.min_events:
        print(
            f"check_trace: only {payload_events} non-metadata events "
            f"(need >= {args.min_events})",
            file=sys.stderr,
        )
        return 1

    missing_names = [n for n in args.expect if n not in names]
    if missing_names:
        print(
            f"check_trace: expected event names not found: {missing_names}; "
            f"saw {sorted(names)[:20]}",
            file=sys.stderr,
        )
        return 1

    print(
        f"check_trace: OK — {payload_events} events, "
        f"{len(events) - payload_events} metadata, {len(names)} distinct names"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
