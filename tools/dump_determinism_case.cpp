// Prints the full run-result serialization of one determinism-corpus case
// (see tests/determinism_corpus.h).  Companion to record_determinism_corpus:
// when a corpus fingerprint moves, diffing this dump between two builds shows
// exactly which scalar or curve point changed.
//
// Usage: dump_determinism_case <case-name>   (e.g. "ASP/s8/none")
#include <iostream>
#include <string>

#include "../tests/determinism_corpus.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: dump_determinism_case <case-name>\n";
    return 2;
  }
  const std::string name = argv[1];
  for (const ss::CorpusCase& c : ss::determinism_corpus()) {
    if (c.name != name) continue;
    const ss::RunResult r = ss::TrainingSession(c.request).run();
    std::cout << ss::serialize_run_result(r);
    return 0;
  }
  std::cerr << "unknown case: " << name << "\n";
  return 2;
}
