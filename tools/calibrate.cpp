// Calibration diagnostic: prints the raw phenomena each experiment setup
// must exhibit before the benches are meaningful (accuracy levels, time
// ratios, staleness, divergence).  Not part of the bench suite; run manually
// when changing cluster constants or workload scales in bench/setups.h.
#include <chrono>
#include <iostream>

#include "common/table.h"
#include "setups.h"

using namespace ss;

namespace {

void probe(const setups::ExperimentSetup& s, const std::vector<double>& fractions) {
  std::cout << "=== setup " << s.id << ": " << s.workload_name << " ===\n";
  Table t({"policy", "acc", "best", "time(min)", "ratio-vs-BSP", "staleness", "loss",
           "diverged@step"});
  double bsp_time = 0.0;
  for (double f : fractions) {
    const SyncSwitchPolicy p = f >= 1.0 ? SyncSwitchPolicy::pure(Protocol::kBsp)
                               : f <= 0.0 ? SyncSwitchPolicy::pure(Protocol::kAsp)
                                          : SyncSwitchPolicy::bsp_to_asp(f);
    const auto t0 = std::chrono::steady_clock::now();
    const RunResult r = setups::cache().run_cached(setups::make_request(s, p, 1));
    const auto t1 = std::chrono::steady_clock::now();
    if (f >= 1.0) bsp_time = r.train_time_seconds;
    t.add_row({Table::pct(f, 2) + " BSP",
               Table::num(r.converged_accuracy, 4),
               Table::num(r.best_accuracy, 4),
               Table::num(r.train_time_seconds / 60.0, 1),
               bsp_time > 0 ? Table::ratio(bsp_time / r.train_time_seconds) : "-",
               Table::num(r.mean_staleness, 2),
               Table::num(r.final_train_loss, 4),
               r.diverged ? std::to_string(r.steps_completed) : "-"});
    std::cout << "  [real "
              << std::chrono::duration_cast<std::chrono::milliseconds>(t1 - t0).count()
              << " ms]\n";
  }
  t.print("sweep (fraction of workload under BSP before switching to ASP)");
}

}  // namespace

int main() {
  probe(setups::setup1(), {1.0, 0.0, 0.03125, 0.0625, 0.25, 0.5});
  probe(setups::setup3(), {1.0, 0.0, 0.5, 0.25});
  probe(setups::setup2(), {1.0, 0.0, 0.125, 0.25, 0.5});
  return 0;
}
